// Self-tests for the turbo_lint v2 analysis engine (tools/lint/).
//
// Each rule is exercised against one positive and one negative fixture
// from tests/lint_fixtures/ — the positive must fire, the negative must
// stay silent (the negatives encode the sanctioned alternatives, e.g.
// the sorted-snapshot idiom for rule 8). On top of the per-rule pairs:
// suppression markers, the baseline round-trip, JSON well-formedness
// and run-to-run determinism.
#include <cctype>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lint/engine.h"

namespace {

using turbo::lint::Finding;
using turbo::lint::Project;
using turbo::lint::SourceFile;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(TURBO_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Build a project mapping fixture files onto in-tree-looking paths (some
// rules key on the path: rule 7 wants src/serving/swap.*, rule 10 wants
// the kernel directories).
Project project_from(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const auto& [rel, fixture] : files) {
    sources.push_back(turbo::lint::make_source(rel, read_fixture(fixture)));
  }
  return Project(std::move(sources));
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

// Runs the whole registry over a single fixture and counts how often
// `rule` fired (other rules may legitimately stay silent on it).
std::size_t fire_count(const std::string& rel, const std::string& fixture,
                       const std::string& rule) {
  const Project project = project_from({{rel, fixture}});
  return count_rule(turbo::lint::run_rules(project), rule);
}

std::string remove_all(std::string text, const std::string& needle) {
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos)) {
    text.erase(pos, needle.size());
  }
  return text;
}

// --- minimal JSON validator (recursive descent, structure only) -----------

struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

bool parse_json_value(JsonCursor& c);

bool parse_json_string(JsonCursor& c) {
  if (!c.eat('"')) return false;
  while (c.pos < c.text.size() && c.text[c.pos] != '"') {
    if (c.text[c.pos] == '\\') {
      ++c.pos;
      if (c.pos >= c.text.size()) return false;
    }
    ++c.pos;
  }
  return c.eat('"');
}

bool parse_json_object(JsonCursor& c) {
  if (!c.eat('{')) return false;
  if (c.eat('}')) return true;
  do {
    if (!parse_json_string(c)) return false;
    if (!c.eat(':')) return false;
    if (!parse_json_value(c)) return false;
  } while (c.eat(','));
  return c.eat('}');
}

bool parse_json_array(JsonCursor& c) {
  if (!c.eat('[')) return false;
  if (c.eat(']')) return true;
  do {
    if (!parse_json_value(c)) return false;
  } while (c.eat(','));
  return c.eat(']');
}

bool parse_json_value(JsonCursor& c) {
  c.skip_ws();
  if (c.pos >= c.text.size()) return false;
  const char head = c.text[c.pos];
  if (head == '{') return parse_json_object(c);
  if (head == '[') return parse_json_array(c);
  if (head == '"') return parse_json_string(c);
  if (c.text.compare(c.pos, 4, "true") == 0) {
    c.pos += 4;
    return true;
  }
  if (c.text.compare(c.pos, 5, "false") == 0) {
    c.pos += 5;
    return true;
  }
  if (c.text.compare(c.pos, 4, "null") == 0) {
    c.pos += 4;
    return true;
  }
  // Number: digits, sign, dot, exponent.
  const std::size_t start = c.pos;
  while (c.pos < c.text.size() &&
         (std::isdigit(static_cast<unsigned char>(c.text[c.pos])) != 0 ||
          c.text[c.pos] == '-' || c.text[c.pos] == '+' ||
          c.text[c.pos] == '.' || c.text[c.pos] == 'e' ||
          c.text[c.pos] == 'E')) {
    ++c.pos;
  }
  return c.pos > start;
}

bool is_valid_json(const std::string& text) {
  JsonCursor c{text};
  if (!parse_json_value(c)) return false;
  c.skip_ws();
  return c.pos == text.size();
}

// --- lexer ----------------------------------------------------------------

TEST(LintLexerTest, TracksBraceDepthAndDirectives) {
  const auto lexed =
      turbo::lint::lex("#include <cassert>\nint f() { int a = 0; { a = 1; } return a; }\n");
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens[0].kind, turbo::lint::TokKind::kDirective);
  EXPECT_NE(lexed.tokens[0].text.find("cassert"), std::string::npos);

  std::size_t outer_depth = 0;
  std::size_t inner_depth = 0;
  std::size_t seen = 0;
  for (const auto& tok : lexed.tokens) {
    if (tok.kind == turbo::lint::TokKind::kIdent && tok.text == "a") {
      ++seen;
      if (seen == 1) outer_depth = tok.depth;  // int a = 0;
      if (seen == 2) inner_depth = tok.depth;  // a = 1;
    }
  }
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(inner_depth, outer_depth + 1);
}

TEST(LintLexerTest, StringLiteralsAreOpaqueTokens) {
  const auto lexed = turbo::lint::lex(
      "const char* kMsg = \"assert(fired) && std::rand()\";\n");
  for (const auto& tok : lexed.tokens) {
    if (tok.kind == turbo::lint::TokKind::kIdent) {
      EXPECT_NE(tok.text, "assert");
      EXPECT_NE(tok.text, "rand");
    }
  }
}

TEST(LintLexerTest, FloatLiteralDetection) {
  const auto lexed = turbo::lint::lex("double d = 1.5f + 42 + 3e8;\n");
  std::vector<bool> floats;
  for (const auto& tok : lexed.tokens) {
    if (tok.kind == turbo::lint::TokKind::kNumber) {
      floats.push_back(tok.is_float);
    }
  }
  ASSERT_EQ(floats.size(), 3u);
  EXPECT_TRUE(floats[0]);
  EXPECT_FALSE(floats[1]);
  EXPECT_TRUE(floats[2]);
}

TEST(LintLexerTest, MarkersAndFileTags) {
  const auto lexed = turbo::lint::lex(
      "// turbo-lint: integer-kernel\n"
      "int f(int v) {\n"
      "  return v;  // turbo-lint: allow-float\n"
      "}\n");
  EXPECT_TRUE(turbo::lint::line_has_marker(lexed, 3, "allow-float"));
  EXPECT_FALSE(turbo::lint::line_has_marker(lexed, 2, "allow-float"));
  EXPECT_EQ(lexed.tags.count("integer-kernel"), 1u);
}

// --- rule registry --------------------------------------------------------

TEST(LintRegistryTest, FourteenRulesInOrder) {
  const auto& rules = turbo::lint::rules();
  const std::vector<std::string> expected = {
      "no-raw-assert",        "unchecked-i8-cast",
      "integer-kernel",       "method-shape-check",
      "unchecked-cache-append", "unmirrored-engine-counter",
      "unfaultable-swap-io",  "nondeterministic-iteration",
      "unsanctioned-entropy", "mutable-global-state",
      "unordered-float-reduction", "unfaultable-replica-channel",
      "cow-unguarded-page-write", "unfaultable-snapshot-io"};
  ASSERT_EQ(rules.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rules[i].id, expected[i]);
    EXPECT_FALSE(rules[i].summary.empty()) << rules[i].id;
  }
  ASSERT_NE(turbo::lint::rule_info("nondeterministic-iteration"), nullptr);
  EXPECT_EQ(turbo::lint::rule_info("nondeterministic-iteration")->suppression,
            "allow-unordered-iter");
  ASSERT_NE(turbo::lint::rule_info("unfaultable-replica-channel"), nullptr);
  EXPECT_EQ(turbo::lint::rule_info("unfaultable-replica-channel")->suppression,
            "allow-unfaultable-channel");
  ASSERT_NE(turbo::lint::rule_info("cow-unguarded-page-write"), nullptr);
  EXPECT_EQ(turbo::lint::rule_info("cow-unguarded-page-write")->suppression,
            "allow-cow-write");
  ASSERT_NE(turbo::lint::rule_info("unfaultable-snapshot-io"), nullptr);
  EXPECT_EQ(turbo::lint::rule_info("unfaultable-snapshot-io")->suppression,
            "allow-unfaultable-snapshot");
  EXPECT_EQ(turbo::lint::rule_info("no-such-rule"), nullptr);
}

// --- per-rule fixtures ----------------------------------------------------

TEST(LintRuleTest, NoRawAssert) {
  EXPECT_GE(fire_count("src/a.cpp", "rule01_pos.cpp", "no-raw-assert"), 1u);
  EXPECT_EQ(fire_count("src/a.cpp", "rule01_neg.cpp", "no-raw-assert"), 0u);
}

TEST(LintRuleTest, UncheckedI8Cast) {
  EXPECT_GE(fire_count("src/a.cpp", "rule02_pos.cpp", "unchecked-i8-cast"),
            1u);
  EXPECT_EQ(fire_count("src/a.cpp", "rule02_neg.cpp", "unchecked-i8-cast"),
            0u);
}

TEST(LintRuleTest, IntegerKernel) {
  EXPECT_GE(fire_count("src/a.cpp", "rule03_pos.cpp", "integer-kernel"), 1u);
  EXPECT_EQ(fire_count("src/a.cpp", "rule03_neg.cpp", "integer-kernel"), 0u);
}

TEST(LintRuleTest, MethodShapeCheck) {
  EXPECT_GE(fire_count("src/a.cpp", "rule04_pos.cpp", "method-shape-check"),
            1u);
  EXPECT_EQ(fire_count("src/a.cpp", "rule04_neg.cpp", "method-shape-check"),
            0u);
}

TEST(LintRuleTest, UncheckedCacheAppend) {
  EXPECT_GE(
      fire_count("src/a.cpp", "rule05_pos.cpp", "unchecked-cache-append"),
      1u);
  EXPECT_EQ(
      fire_count("src/a.cpp", "rule05_neg.cpp", "unchecked-cache-append"),
      0u);
}

TEST(LintRuleTest, UnmirroredEngineCounter) {
  const Project pos = project_from({
      {"src/serving/engine.h", "rule06_pos_engine.h"},
      {"src/serving/metrics.h", "rule06_metrics.h"},
      {"src/serving/metrics.cpp", "rule06_metrics.cpp"},
  });
  const auto pos_findings = turbo::lint::run_rules(pos);
  ASSERT_EQ(count_rule(pos_findings, "unmirrored-engine-counter"), 1u);
  bool names_dropped = false;
  for (const Finding& f : pos_findings) {
    if (f.rule == "unmirrored-engine-counter" &&
        f.message.find("dropped") != std::string::npos) {
      names_dropped = true;
    }
  }
  EXPECT_TRUE(names_dropped);

  const Project neg = project_from({
      {"src/serving/engine.h", "rule06_neg_engine.h"},
      {"src/serving/metrics.h", "rule06_metrics.h"},
      {"src/serving/metrics.cpp", "rule06_metrics.cpp"},
  });
  EXPECT_EQ(count_rule(turbo::lint::run_rules(neg),
                       "unmirrored-engine-counter"),
            0u);
}

TEST(LintRuleTest, UnfaultableSwapIo) {
  EXPECT_GE(fire_count("src/serving/swap.h", "rule07_pos.h",
                       "unfaultable-swap-io"),
            1u);
  EXPECT_EQ(fire_count("src/serving/swap.h", "rule07_neg.h",
                       "unfaultable-swap-io"),
            0u);
  // The same signatures outside the swap layer are nobody's business.
  EXPECT_EQ(fire_count("src/kvcache/other.h", "rule07_pos.h",
                       "unfaultable-swap-io"),
            0u);
}

TEST(LintRuleTest, UnfaultableReplicaChannel) {
  EXPECT_GE(fire_count("src/fleet/router.h", "rule12_pos.h",
                       "unfaultable-replica-channel"),
            1u);
  EXPECT_EQ(fire_count("src/fleet/router.h", "rule12_neg.h",
                       "unfaultable-replica-channel"),
            0u);
  // The same signatures outside src/fleet/ are nobody's business.
  EXPECT_EQ(fire_count("src/serving/other.h", "rule12_pos.h",
                       "unfaultable-replica-channel"),
            0u);
}

TEST(LintRuleTest, UnfaultableSnapshotIo) {
  EXPECT_GE(fire_count("src/serving/snapshot.h", "rule14_pos.h",
                       "unfaultable-snapshot-io"),
            1u);
  EXPECT_EQ(fire_count("src/serving/snapshot.h", "rule14_neg.h",
                       "unfaultable-snapshot-io"),
            0u);
  // The same signatures outside the snapshot layer are nobody's business
  // (src/serving/engine.h declares snapshot_to/restore_from itself).
  EXPECT_EQ(fire_count("src/serving/engine.h", "rule14_pos.h",
                       "unfaultable-snapshot-io"),
            0u);
}

TEST(LintRuleTest, CowUnguardedPageWrite) {
  EXPECT_EQ(fire_count("src/kvcache/paged_cache.cpp", "rule13_pos.cpp",
                       "cow-unguarded-page-write"),
            2u);
  EXPECT_EQ(fire_count("src/kvcache/paged_cache.cpp", "rule13_neg.cpp",
                       "cow-unguarded-page-write"),
            0u);
}

TEST(LintRuleTest, NondeterministicIteration) {
  EXPECT_GE(fire_count("src/a.cpp", "rule08_pos.cpp",
                       "nondeterministic-iteration"),
            1u);
  // Integer reduction and the sorted-snapshot idiom both pass.
  EXPECT_EQ(fire_count("src/a.cpp", "rule08_neg.cpp",
                       "nondeterministic-iteration"),
            0u);
}

TEST(LintRuleTest, UnsanctionedEntropy) {
  EXPECT_GE(
      fire_count("src/a.cpp", "rule09_pos.cpp", "unsanctioned-entropy"), 1u);
  EXPECT_EQ(
      fire_count("src/a.cpp", "rule09_neg.cpp", "unsanctioned-entropy"), 0u);
  // The seeded RNG implementation itself is the sanctioned home.
  EXPECT_EQ(fire_count("src/common/rng.h", "rule09_pos.cpp",
                       "unsanctioned-entropy"),
            0u);
}

TEST(LintRuleTest, MutableGlobalState) {
  EXPECT_GE(fire_count("src/kernels/fixture.cpp", "rule10_pos.cpp",
                       "mutable-global-state"),
            1u);
  EXPECT_EQ(fire_count("src/kernels/fixture.cpp", "rule10_neg.cpp",
                       "mutable-global-state"),
            0u);
  // Outside the worker-pool directories the rule does not apply.
  EXPECT_EQ(fire_count("src/serving/fixture.cpp", "rule10_pos.cpp",
                       "mutable-global-state"),
            0u);
}

TEST(LintRuleTest, UnorderedFloatReduction) {
  EXPECT_GE(fire_count("src/a.cpp", "rule11_pos.cpp",
                       "unordered-float-reduction"),
            1u);
  EXPECT_EQ(fire_count("src/a.cpp", "rule11_neg.cpp",
                       "unordered-float-reduction"),
            0u);
}

// --- suppression markers --------------------------------------------------

TEST(LintSuppressionTest, MarkersSilenceFindings) {
  const Project suppressed =
      project_from({{"src/a.cpp", "suppressed.cpp"}});
  const auto quiet = turbo::lint::run_rules(suppressed);
  EXPECT_EQ(count_rule(quiet, "unchecked-i8-cast"), 0u);
  EXPECT_EQ(count_rule(quiet, "nondeterministic-iteration"), 0u);
}

TEST(LintSuppressionTest, StrippedMarkersFireAgain) {
  std::string text = read_fixture("suppressed.cpp");
  text = remove_all(text, "turbo-lint: allow-narrowing");
  text = remove_all(text, "turbo-lint: allow-unordered-iter");
  std::vector<SourceFile> sources;
  sources.push_back(turbo::lint::make_source("src/a.cpp", text));
  const Project project(std::move(sources));
  const auto loud = turbo::lint::run_rules(project);
  EXPECT_GE(count_rule(loud, "unchecked-i8-cast"), 1u);
  EXPECT_GE(count_rule(loud, "nondeterministic-iteration"), 1u);
}

// --- baseline round-trip --------------------------------------------------

TEST(LintBaselineTest, RoundTripConsumesEveryFinding) {
  const Project project =
      project_from({{"src/fixture.cpp", "rule01_pos.cpp"}});
  const auto findings = turbo::lint::run_rules(project);
  ASSERT_FALSE(findings.empty());

  const std::string baseline_text =
      turbo::lint::format_baseline(findings, project);
  const auto baseline = turbo::lint::parse_baseline(baseline_text);
  EXPECT_EQ(baseline.size(), findings.size());

  std::vector<std::string> stale;
  const auto live =
      turbo::lint::apply_baseline(findings, project, baseline, &stale);
  EXPECT_TRUE(live.empty());
  EXPECT_TRUE(stale.empty());
}

TEST(LintBaselineTest, UnmatchedEntriesReportedStale) {
  const Project project =
      project_from({{"src/fixture.cpp", "rule01_pos.cpp"}});
  const auto findings = turbo::lint::run_rules(project);
  ASSERT_FALSE(findings.empty());

  const std::string baseline_text =
      turbo::lint::format_baseline(findings, project) +
      "no-raw-assert src/fixture.cpp 0123456789abcdef\n";
  std::vector<std::string> stale;
  const auto live = turbo::lint::apply_baseline(
      findings, project, turbo::lint::parse_baseline(baseline_text), &stale);
  EXPECT_TRUE(live.empty());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "0123456789abcdef");
}

TEST(LintBaselineTest, CommentsAndBlankLinesIgnored) {
  const auto parsed = turbo::lint::parse_baseline(
      "# header comment\n\n   \n# another\n");
  EXPECT_TRUE(parsed.empty());
}

TEST(LintBaselineTest, KeyIgnoresLineNumbers) {
  // The same offending line at different line numbers hashes to the same
  // key, so unrelated edits above a grandfathered finding keep the
  // baseline entry valid.
  const std::string body = "void f(int v) { assert(v > 0); }\n";
  const Project early(
      {turbo::lint::make_source("src/x.cpp", "#include <cassert>\n" + body)});
  const Project late({turbo::lint::make_source(
      "src/x.cpp", "#include <cassert>\n// pad\n// pad\n// pad\n" + body)});

  const auto find_assert_key = [](const Project& p) {
    std::string key;
    for (const Finding& f : turbo::lint::run_rules(p)) {
      if (f.rule == "no-raw-assert" && f.line > 1) {
        key = turbo::lint::finding_key(f, p);
      }
    }
    return key;
  };
  const std::string a = find_assert_key(early);
  const std::string b = find_assert_key(late);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// --- JSON output ----------------------------------------------------------

TEST(LintJsonTest, ReportIsWellFormed) {
  const Project project = project_from({
      {"src/a.cpp", "rule01_pos.cpp"},
      {"src/b.cpp", "rule08_pos.cpp"},
      {"src/c.cpp", "rule09_pos.cpp"},
  });
  const auto findings = turbo::lint::run_rules(project);
  ASSERT_FALSE(findings.empty());
  const std::string json = turbo::lint::to_json(findings, 3);
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"tool\": \"turbo_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 3"), std::string::npos);
}

TEST(LintJsonTest, EmptyReportIsWellFormed) {
  const std::string json = turbo::lint::to_json({}, 0);
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
}

TEST(LintJsonTest, MessagesAreEscaped) {
  Finding hostile;
  hostile.rel = "src/we\\ird\".cpp";
  hostile.line = 7;
  hostile.rule = "no-such-rule";
  hostile.message = "quote \" backslash \\ newline \n tab \t done";
  const std::string json = turbo::lint::to_json({hostile}, 1);
  EXPECT_TRUE(is_valid_json(json)) << json;
}

// --- determinism ----------------------------------------------------------

TEST(LintDeterminismTest, RepeatRunsAreByteIdentical) {
  const std::vector<std::pair<std::string, std::string>> tree = {
      {"src/a.cpp", "rule01_pos.cpp"},  {"src/b.cpp", "rule02_pos.cpp"},
      {"src/c.cpp", "rule08_pos.cpp"},  {"src/d.cpp", "rule09_pos.cpp"},
      {"src/kernels/e.cpp", "rule10_pos.cpp"},
      {"src/f.cpp", "rule11_pos.cpp"},
  };
  const Project first = project_from(tree);
  const Project second = project_from(tree);
  const auto run1 = turbo::lint::run_rules(first);
  const auto run2 = turbo::lint::run_rules(second);
  EXPECT_EQ(turbo::lint::to_text(run1), turbo::lint::to_text(run2));
  EXPECT_EQ(turbo::lint::to_json(run1, tree.size()),
            turbo::lint::to_json(run2, tree.size()));
  // Findings arrive sorted by (file, line, rule, message).
  for (std::size_t i = 1; i < run1.size(); ++i) {
    const auto key = [](const Finding& f) {
      return std::make_tuple(f.rel, f.line, f.rule, f.message);
    };
    EXPECT_LE(key(run1[i - 1]), key(run1[i]));
  }
}

}  // namespace
