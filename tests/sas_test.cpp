#include "softmax/sas.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/check.h"

#include "common/stats.h"
#include "softmax/softmax.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

TEST(SasTest, PolyApproximatesExpOnUnitInterval) {
  // Figure 5's claim: the degree-3 fit tracks e^{-t} closely on [0, 1].
  double max_err = 0.0;
  for (int i = 0; i <= 1000; ++i) {
    const float t = static_cast<float>(i) / 1000.0f;
    const double err = std::abs(Sas::poly(t) - std::exp(-t));
    max_err = std::max(max_err, err);
  }
  EXPECT_LT(max_err, 5e-4);
}

TEST(SasTest, PolyFp16CloseToPolyFp32) {
  for (int i = 0; i <= 100; ++i) {
    const float t = static_cast<float>(i) / 100.0f;
    EXPECT_NEAR(Sas::poly_fp16(t), Sas::poly(t), 3e-3f) << "t=" << t;
  }
}

TEST(SasTest, LutHoldsNegativePowersOfE) {
  const Sas sas(SasConfig{.threshold = -6, .fp16_arithmetic = false});
  const auto lut = sas.lut();
  ASSERT_EQ(lut.size(), 8u);  // e^0..e^-6 plus the zero sentinel
  for (int i = 0; i <= 6; ++i) {
    EXPECT_NEAR(lut[static_cast<std::size_t>(i)],
                std::exp(static_cast<float>(-i)), 1e-6f);
  }
  EXPECT_EQ(lut.back(), 0.0f);
}

TEST(SasTest, SparsificationBelowThreshold) {
  const Sas sas;
  EXPECT_EQ(sas.exp_neg(-6.5f), 0.0f);
  EXPECT_EQ(sas.exp_neg(-100.0f), 0.0f);
  EXPECT_EQ(sas.exp_neg(-std::numeric_limits<float>::infinity()), 0.0f);
  EXPECT_GT(sas.exp_neg(-5.9f), 0.0f);
}

TEST(SasTest, ExactThresholdIsNotSparsified) {
  // Sparsification is x < threshold, strictly: the boundary score itself
  // still contributes e^{threshold} (Algorithm 3 keeps X >= n_r). A
  // regression here silently widens the sparsified tail by one LUT bucket.
  for (const int threshold : {-4, -6, -8}) {
    SCOPED_TRACE("threshold " + std::to_string(threshold));
    const Sas sas(SasConfig{.threshold = threshold,
                            .fp16_arithmetic = false});
    const float x = static_cast<float>(threshold);
    EXPECT_GT(sas.exp_neg(x), 0.0f);
    // y_dec == 0 at the boundary, so the result is LUT[|threshold|] times
    // poly(0) = c0 — within the polynomial's fit error of e^{threshold}.
    EXPECT_NEAR(sas.exp_neg(x), std::exp(x), 5e-4f * std::exp(x) + 1e-6f);
    // One ULP below the boundary is sparsified to exactly zero.
    const float below =
        std::nextafter(x, -std::numeric_limits<float>::infinity());
    EXPECT_EQ(sas.exp_neg(below), 0.0f);
  }
}

TEST(SasTest, SentinelBucketYieldsExactZero) {
  // The LUT carries |threshold| + 2 entries: e^0 .. e^{threshold} plus one
  // zero sentinel so the branch-free indexed path (Algorithm 3 rewrites
  // X[X < n_r] to bucket n_r + 1) needs no comparison. The sentinel must
  // be exactly 0.0 — any epsilon leaks mass into the sparsified tail and
  // breaks the softmax normalization accounting.
  for (const int threshold : {-4, -6, -8}) {
    SCOPED_TRACE("threshold " + std::to_string(threshold));
    const Sas sas(SasConfig{.threshold = threshold});
    const auto lut = sas.lut();
    const std::size_t n = static_cast<std::size_t>(-threshold);
    ASSERT_EQ(lut.size(), n + 2);
    EXPECT_EQ(lut[n + 1], 0.0f);
    // The sentinel annihilates whatever the polynomial produces, exactly:
    // T[n_r + 1] * poly(t) == 0 for any fractional part t.
    for (const float t : {0.0f, 0.25f, 0.5f, 0.999f}) {
      EXPECT_EQ(lut[n + 1] * Sas::poly(t), 0.0f);
      EXPECT_EQ(lut[n + 1] * Sas::poly_fp16(t), 0.0f);
    }
    // All real buckets are strictly positive, so zero uniquely marks the
    // sparsified bucket.
    for (std::size_t i = 0; i <= n; ++i) {
      EXPECT_GT(lut[i], 0.0f);
    }
  }
}

TEST(SasTest, ApproximationErrorWithinRange) {
  const Sas sas;
  for (int i = 0; i <= 600; ++i) {
    const float x = -static_cast<float>(i) / 100.0f;  // [-6, 0]
    const float approx = sas.exp_neg(x);
    const float exact = std::exp(x);
    // Absolute error: POLY error (~5e-4) + FP16 rounding of values <= 1.
    EXPECT_NEAR(approx, exact, 2.5e-3f) << "x=" << x;
  }
}

TEST(SasTest, PositiveInputsClampToOne) {
  const Sas sas;
  // Rounding noise can push shifted scores slightly above 0.
  EXPECT_NEAR(sas.exp_neg(0.001f), 1.0f, 2e-3f);
  EXPECT_NEAR(sas.exp_neg(0.0f), 1.0f, 2e-3f);
}

TEST(SasTest, ExactModeBypassesApproximation) {
  const Sas sas(SasConfig{.exact_exp = true});
  for (float x : {-0.3f, -2.7f, -10.0f, -50.0f}) {
    EXPECT_FLOAT_EQ(sas.exp_neg(x), std::exp(x));
  }
}

TEST(SasTest, SoftmaxSumsToOne) {
  const Sas sas;
  const MatrixF scores = test::random_matrix(8, 64, 3, 2.0);
  const MatrixF p = sas.softmax(scores);
  for (std::size_t r = 0; r < p.rows(); ++r) {
    float sum = 0.0f;
    for (float v : p.row(r)) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SasTest, SoftmaxCloseToExact) {
  const Sas sas;
  const MatrixF scores = test::random_matrix(16, 128, 7, 3.0);
  const MatrixF approx = sas.softmax(scores);
  const MatrixF exact = softmax_rows(scores);
  EXPECT_LT(max_abs_error(approx, exact), 0.03);
}

TEST(SasTest, SoftmaxSparsifiesTail) {
  const Sas sas;
  MatrixF scores(1, 4);
  scores(0, 0) = 0.0f;
  scores(0, 1) = -1.0f;
  scores(0, 2) = -20.0f;  // far below threshold after shift
  scores(0, 3) = -30.0f;
  const MatrixF p = sas.softmax(scores);
  EXPECT_EQ(p(0, 2), 0.0f);
  EXPECT_EQ(p(0, 3), 0.0f);
  EXPECT_GT(p(0, 0), p(0, 1));
}

TEST(SasTest, ArgmaxPreserved) {
  // SAS must never flip the ranking of well separated scores.
  const Sas sas;
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    MatrixF scores(1, 16);
    for (float& v : scores.flat()) {
      v = static_cast<float>(rng.normal(0.0, 2.0));
    }
    // Skip near-ties: SAS's ~2e-3 absolute error can legitimately flip
    // scores separated by less than its error band.
    float top = -1e30f;
    float second = -1e30f;
    for (float v : scores.flat()) {
      if (v > top) {
        second = top;
        top = v;
      } else if (v > second) {
        second = v;
      }
    }
    if (top - second < 0.05f) continue;

    const MatrixF pa = sas.softmax(scores);
    const MatrixF pe = softmax_rows(scores);
    std::size_t arg_a = 0;
    std::size_t arg_e = 0;
    for (std::size_t c = 1; c < 16; ++c) {
      if (pa(0, c) > pa(0, arg_a)) arg_a = c;
      if (pe(0, c) > pe(0, arg_e)) arg_e = c;
    }
    EXPECT_EQ(arg_a, arg_e) << "trial " << trial;
  }
}

class SasThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(SasThresholdSweep, TighterThresholdLargerError) {
  const int threshold = GetParam();
  const Sas sas(SasConfig{.threshold = threshold});
  // Total probability mass wrongly zeroed is bounded by
  // n * e^{threshold} after normalization.
  const MatrixF scores = test::random_matrix(4, 256, 13, 3.0);
  const MatrixF approx = sas.softmax(scores);
  const MatrixF exact = softmax_rows(scores);
  const double bound =
      256.0 * std::exp(static_cast<double>(threshold)) + 6e-3;
  EXPECT_LT(max_abs_error(approx, exact), bound) << "n_r=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SasThresholdSweep,
                         ::testing::Values(-4, -6, -8, -12));

TEST(SasTest, InvalidThresholdThrows) {
  EXPECT_THROW(Sas(SasConfig{.threshold = 0}), CheckError);
  EXPECT_THROW(Sas(SasConfig{.threshold = 3}), CheckError);
}

}  // namespace
}  // namespace turbo
