#include "sim/parallel.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace turbo::sim {
namespace {

InferenceConfig config(AttnMethod m, double bits, std::size_t batch,
                       std::size_t prompt, std::size_t gen) {
  InferenceConfig c;
  c.method = m;
  c.attention.kv_bits = bits;
  c.batch = batch;
  c.prompt = prompt;
  c.generate = gen;
  return c;
}

TensorParallelConfig tp(std::size_t gpus) {
  TensorParallelConfig t;
  t.gpus = gpus;
  return t;
}

TEST(ParallelTest, SingleGpuMatchesBaseModel) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = llama3_8b_geometry();
  const InferenceConfig cfg = config(AttnMethod::kTurbo, 4, 4, 2048, 64);
  EXPECT_DOUBLE_EQ(prefill_breakdown_tp(dev, g, cfg, tp(1)).total(),
                   prefill_breakdown(dev, g, cfg).total());
  EXPECT_DOUBLE_EQ(
      decode_step_breakdown_tp(dev, g, cfg, 2048, tp(1)).total(),
      decode_step_breakdown(dev, g, cfg, 2048).total());
  EXPECT_DOUBLE_EQ(allreduce_time(dev, g, tp(1), 4, 2048), 0.0);
}

TEST(ParallelTest, AllreduceScalesWithPayloadAndLayers) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = llama3_8b_geometry();
  const double t2 = allreduce_time(dev, g, tp(2), 4, 1024);
  const double t2_bigger = allreduce_time(dev, g, tp(2), 8, 1024);
  EXPECT_GT(t2, 0.0);
  EXPECT_GT(t2_bigger, t2);
  // Ring all-reduce payload factor grows toward 2x as G grows, but
  // per-collective latency adds linearly: 8 GPUs cost more than 2.
  EXPECT_GT(allreduce_time(dev, g, tp(8), 4, 1024), t2);
}

TEST(ParallelTest, ShardingReducesPerGpuMemory) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();
  const InferenceConfig cfg =
      config(AttnMethod::kFlashFp16, 16, 4, 8192, 128);
  const MemoryUse m1 = memory_use_tp(dev, g, cfg, tp(1));
  const MemoryUse m4 = memory_use_tp(dev, g, cfg, tp(4));
  EXPECT_LT(m4.weights, m1.weights);
  EXPECT_LT(m4.kv_cache, m1.kv_cache);
}

TEST(ParallelTest, MoreGpusMoreBatch) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();
  const InferenceConfig cfg =
      config(AttnMethod::kFlashFp16, 16, 1, 1024, 125);
  const std::size_t b1 = max_batch_tp(dev, g, cfg, tp(1));
  const std::size_t b4 = max_batch_tp(dev, g, cfg, tp(4));
  EXPECT_GT(b4, b1);
}

TEST(ParallelTest, PrefillSpeedsUpWithGpus) {
  // Prefill is compute-dominated: sharding 4 ways must cut latency
  // substantially even after paying the all-reduces.
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();
  const InferenceConfig cfg = config(AttnMethod::kTurbo, 4, 4, 8192, 1);
  const double t1 = prefill_breakdown_tp(dev, g, cfg, tp(1)).total();
  const double t4 = prefill_breakdown_tp(dev, g, cfg, tp(4)).total();
  EXPECT_LT(t4, t1);
  EXPECT_GT(t4, t1 / 4.0);  // collectives keep it sublinear
}

TEST(ParallelTest, TurboAdvantageSurvivesTensorParallelism) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();
  for (std::size_t gpus : {1u, 2u, 4u}) {
    const InferenceConfig fp16 =
        config(AttnMethod::kFlashFp16, 16, 8, 8192, 1);
    const InferenceConfig turbo = config(AttnMethod::kTurbo, 3, 8, 8192, 1);
    const double t_fp16 =
        decode_step_breakdown_tp(dev, g, fp16, 8192, tp(gpus)).total();
    const double t_turbo =
        decode_step_breakdown_tp(dev, g, turbo, 8192, tp(gpus)).total();
    EXPECT_LT(t_turbo, t_fp16) << gpus << " GPUs";
  }
}

TEST(ParallelTest, IndivisibleHeadsThrow) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();  // 40 heads
  const InferenceConfig cfg = config(AttnMethod::kTurbo, 4, 1, 1024, 1);
  EXPECT_THROW(prefill_breakdown_tp(dev, g, cfg, tp(3)), CheckError);
}

}  // namespace
}  // namespace turbo::sim
