#include "quant/symmetric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

TEST(SymmetricQuantTest, ScaleUsesHeadroom) {
  std::vector<float> v{-119.0f, 60.0f};
  EXPECT_FLOAT_EQ(symmetric_scale_int8(v), 1.0f);  // max|x| / 119
  EXPECT_FLOAT_EQ(symmetric_scale_int8(v, 238.0f), 0.5f);
}

TEST(SymmetricQuantTest, ZeroInputHasPositiveScale) {
  std::vector<float> v{0.0f, 0.0f};
  EXPECT_GT(symmetric_scale_int8(v), 0.0f);
}

TEST(SymmetricQuantTest, RoundTripErrorBoundedByHalfScale) {
  const MatrixF m = test::random_matrix(32, 64, 99, 3.0);
  const Int8Tile tile = quantize_tile_int8(m);
  const MatrixF back = dequantize_tile(tile);
  // In-range values (|x| <= 119 * s) quantize with error <= s/2; the
  // headroom guarantees every input is in range.
  const double bound = tile.scale / 2.0 + 1e-6;
  EXPECT_LE(max_abs_error(m, back), bound);
}

TEST(SymmetricQuantTest, HeadroomLeavesMargin) {
  // The largest magnitude maps to +-119, well inside int8.
  std::vector<float> v{10.0f, -20.0f, 15.0f};
  const float scale = symmetric_scale_int8(v);
  std::vector<std::int8_t> q(v.size());
  quantize_symmetric_int8(v, scale, q);
  for (std::int8_t x : q) {
    EXPECT_LE(std::abs(static_cast<int>(x)), 119);
  }
}

TEST(SymmetricQuantTest, ClampingWithExternalScale) {
  // Values beyond the representable range saturate at +-127 instead of
  // wrapping — the decode-buffer "clamp outliers" behaviour.
  MatrixF m(1, 3);
  m(0, 0) = 1000.0f;
  m(0, 1) = -1000.0f;
  m(0, 2) = 1.0f;
  const Int8Tile tile = quantize_tile_int8_with_scale(m, 1.0f);
  EXPECT_EQ(tile.q(0, 0), 127);
  EXPECT_EQ(tile.q(0, 1), -127);
  EXPECT_EQ(tile.q(0, 2), 1);
}

TEST(SymmetricQuantTest, DequantizeIsLinear) {
  std::vector<std::int8_t> q{-119, 0, 60, 119};
  std::vector<float> out(4);
  dequantize_symmetric_int8(q, 0.5f, out);
  EXPECT_FLOAT_EQ(out[0], -59.5f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 30.0f);
  EXPECT_FLOAT_EQ(out[3], 59.5f);
}

TEST(SymmetricQuantTest, RelativeErrorSmallForGaussianData) {
  const MatrixF m = test::random_matrix(64, 64, 7);
  const Int8Tile tile = quantize_tile_int8(m);
  const MatrixF back = dequantize_tile(tile);
  // INT8 with per-block scale on N(0,1): relative error well under 2%.
  EXPECT_LT(relative_error(m, back), 0.02);
}

// Round-trip across a sweep of magnitudes: quantization must be
// scale-invariant (relative error independent of data magnitude).
class SymmetricScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(SymmetricScaleSweep, RelativeErrorIsScaleInvariant) {
  const double magnitude = GetParam();
  const MatrixF m = test::random_matrix(32, 32, 21, magnitude);
  const Int8Tile tile = quantize_tile_int8(m);
  const MatrixF back = dequantize_tile(tile);
  EXPECT_LT(relative_error(m, back), 0.02) << "magnitude " << magnitude;
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, SymmetricScaleSweep,
                         ::testing::Values(1e-4, 1e-2, 1.0, 1e2, 1e4));

}  // namespace
}  // namespace turbo
