// Prefill/decode disaggregation: role-split fleets, the prefill→decode
// KV handoff over the migration channel, decode-pool backpressure, and
// the failure ladder that degrades a dead role to symmetric mode
// (src/fleet/router.h).
//
// The contracts under test: a disaggregated fleet hands every finished
// prefill to a decode replica and still reaches exactly one terminal
// state per request; killing a prefill replica mid-run — even the only
// one — re-routes or degrades, never hangs; transient handoff faults
// retry within the budget and fall back to recompute past it; corrupt
// handoffs are CRC-detected and recomputed; decode-pool saturation
// defers admission without stranding arrivals; a zero-byte migration
// consumes no corruption draw (RNG draw-order parity); and every new
// handoff counter mirrors into FleetMetrics.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/fault.h"
#include "fleet/metrics.h"
#include "fleet/router.h"
#include "serving/metrics.h"
#include "serving/trace.h"
#include "sim/attention_model.h"

namespace turbo::fleet {
namespace {

using serving::EngineConfig;
using serving::Outcome;
using serving::Request;
using serving::TraceConfig;

TraceConfig disagg_trace() {
  TraceConfig t;
  t.arrival_rate = 24.0;
  t.duration_s = 15.0;
  t.prompt_log_mean = 5.5;
  t.prompt_log_std = 0.5;
  t.gen_log_mean = 5.0;
  t.gen_log_std = 0.5;
  t.seed = 29;
  t.class_mix = {0.3, 0.5, 0.2};
  t.ttft_deadline_s = {2.5, 20.0, 0.0};
  return t;
}

EngineConfig disagg_engine() {
  EngineConfig c;
  c.device = sim::a100_pcie_40gb();
  c.geometry = sim::phi3_mini_geometry();
  c.method = sim::AttnMethod::kTurbo;
  c.attention.kv_bits = 4.0;
  c.memory_headroom = 0.35;
  return c;
}

// P prefill replicas + D decode replicas.
FleetConfig disagg_fleet(std::size_t prefill, std::size_t decode) {
  FleetConfig f;
  f.engine = disagg_engine();
  f.replicas = prefill + decode;
  f.prefill_replicas = prefill;
  return f;
}

void expect_all_terminal(const FleetResult& r, std::size_t trace_size) {
  EXPECT_FALSE(r.hit_time_limit);
  ASSERT_EQ(r.requests.size(), trace_size);
  for (const Request& req : r.requests) {
    EXPECT_NE(req.outcome, Outcome::kPending);
  }
}

// Order-independent digest (mirrors fleet_router_test's, including the
// handoff counters) so two disaggregated runs compare in full.
std::uint64_t digest(const FleetResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  auto mixd = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  for (const Request& req : r.requests) {
    mix(req.id);
    mixd(req.prefill_start_s);
    mixd(req.first_token_s);
    mixd(req.finish_s);
    mix(req.generated);
    mix(req.preemptions);
    mix(req.replica_failovers);
    mix(static_cast<std::uint64_t>(req.outcome));
  }
  mixd(r.makespan_s);
  mixd(r.handoff_bytes);
  mixd(r.handoff_stall_s);
  mix(r.routed);
  mix(r.handoffs);
  mix(r.handoff_corruptions);
  mix(r.handoff_retries);
  mix(r.handoff_budget_exhausted);
  mix(r.handoff_recomputes);
  mix(r.role_fallback_prefills);
  mix(r.backpressure_deferrals);
  mix(r.replica_outages);
  mix(r.failover_drains);
  mix(static_cast<std::uint64_t>(r.hit_time_limit));
  return h;
}

// --- Role split --------------------------------------------------------------

// 2p2d smoke: every arrival prefs on a prefill replica, every finished
// prefill crosses the wire, and decoding happens only in the decode
// pool — prefill replicas generate nothing of their own.
TEST(DisaggTest, PrefillsHandOffAndDecodePoolGenerates) {
  const std::vector<Request> trace = serving::generate_trace(disagg_trace());
  const FleetResult r = run_fleet(disagg_fleet(2, 2), trace);
  expect_all_terminal(r, trace.size());
  EXPECT_GT(r.handoffs, 0u);
  EXPECT_GT(r.handoff_bytes, 0.0);
  EXPECT_EQ(r.replica_outages, 0u);
  EXPECT_EQ(r.role_fallback_prefills, 0u);
  // The engine-side handoff counter reconciles with the router's: with
  // no outage, every queued prefill was collected and landed.
  std::size_t lifted = 0;
  std::size_t decode_completed = 0;
  for (std::size_t i = 0; i < r.replica_results.size(); ++i) {
    lifted += r.replica_results[i].prefill_handoffs;
    if (i >= 2) decode_completed += r.replica_results[i].requests.size();
    // A prefill replica never runs a decode iteration of its own: any
    // request it holds at the end generated nothing there.
    if (i < 2) {
      for (const Request& req : r.replica_results[i].requests) {
        EXPECT_EQ(req.generated, 0u);
      }
    }
  }
  EXPECT_EQ(lifted, r.handoffs);
  EXPECT_GT(decode_completed, 0u);
}

// Every handoff counter mirrors into FleetMetrics by name (the lint
// rule 6 contract, exercised end to end).
TEST(DisaggTest, HandoffCountersMirrorIntoFleetMetrics) {
  const std::vector<Request> trace = serving::generate_trace(disagg_trace());
  FleetConfig cfg = disagg_fleet(2, 2);
  cfg.engine.faults.handoff_transient_prob = 0.05;
  cfg.engine.faults.migration_corruption_prob = 0.05;
  const FleetResult r = run_fleet(cfg, trace);
  const FleetMetrics m = summarize_fleet(r);
  EXPECT_EQ(m.prefill_replica_count, r.prefill_replica_count);
  EXPECT_EQ(m.prefill_replica_count, 2u);
  EXPECT_EQ(m.handoffs, r.handoffs);
  EXPECT_EQ(m.handoff_corruptions, r.handoff_corruptions);
  EXPECT_EQ(m.handoff_retries, r.handoff_retries);
  EXPECT_EQ(m.handoff_budget_exhausted, r.handoff_budget_exhausted);
  EXPECT_EQ(m.handoff_recomputes, r.handoff_recomputes);
  EXPECT_EQ(m.role_fallback_prefills, r.role_fallback_prefills);
  EXPECT_EQ(m.backpressure_deferrals, r.backpressure_deferrals);
  EXPECT_EQ(m.handoff_stall_s, r.handoff_stall_s);
  std::size_t lifted = 0;
  for (const serving::ServingMetrics& rm : m.replicas) {
    lifted += rm.prefill_handoffs;
  }
  EXPECT_EQ(m.fleet.prefill_handoffs, lifted);
}

// --- Outage robustness -------------------------------------------------------

// Acceptance case: a 3p1d fleet loses one prefill replica mid-run. Its
// in-flight prompts re-route to sibling prefill replicas and every
// request still reaches exactly one terminal state — no hangs, no leaks
// (the drain asserts zero pages / zero parked streams internally).
TEST(DisaggTest, PrefillReplicaOutageRedirectsToSiblings) {
  const std::vector<Request> trace = serving::generate_trace(disagg_trace());
  FleetConfig cfg = disagg_fleet(3, 1);
  cfg.engine.faults.replicas[1].add_outage(2.0, 8.0);
  const FleetResult r = run_fleet(cfg, trace);
  expect_all_terminal(r, trace.size());
  EXPECT_EQ(r.replica_outages, 1u);
  EXPECT_GT(r.handoffs, 0u);
  EXPECT_EQ(r.routed, trace.size());
}

// The only prefill replica dies: the fleet degrades to symmetric mode —
// decode replicas self-prefill (role_fallback_prefills) until the
// window closes. A dead role costs latency, never liveness.
TEST(DisaggTest, LosingTheOnlyPrefillReplicaDegradesToSymmetric) {
  const std::vector<Request> trace = serving::generate_trace(disagg_trace());
  FleetConfig cfg = disagg_fleet(1, 3);
  cfg.engine.faults.replicas[0].add_outage(2.0, 10.0);
  const FleetResult r = run_fleet(cfg, trace);
  expect_all_terminal(r, trace.size());
  EXPECT_EQ(r.replica_outages, 1u);
  EXPECT_GT(r.role_fallback_prefills, 0u);
}

// Seeded disaggregated runs — outage, handoff faults and all — are
// bit-identical across repeats (and, via CI, across sanitizer lanes).
TEST(DisaggTest, SeededDisaggRunsAreBitIdentical) {
  const std::vector<Request> trace = serving::generate_trace(disagg_trace());
  FleetConfig cfg = disagg_fleet(2, 2);
  cfg.engine.faults.replicas[1].add_outage(2.0, 8.0);
  cfg.engine.faults.handoff_transient_prob = 0.1;
  cfg.engine.faults.migration_corruption_prob = 0.05;
  const std::uint64_t a = digest(run_fleet(cfg, trace));
  const std::uint64_t b = digest(run_fleet(cfg, trace));
  EXPECT_EQ(a, b);
}

// --- Handoff fault ladder ----------------------------------------------------

// Every send attempt hits a transient interconnect fault: the budget is
// spent retrying (with backoff), not a byte crosses the wire, and every
// handoff lands through the recompute path.
TEST(DisaggTest, TransientFaultsExhaustBudgetThenRecompute) {
  const std::vector<Request> trace = serving::generate_trace(disagg_trace());
  FleetConfig cfg = disagg_fleet(2, 2);
  cfg.engine.faults.handoff_transient_prob = 1.0;
  cfg.handoff_retry_budget = 3;
  const FleetResult r = run_fleet(cfg, trace);
  expect_all_terminal(r, trace.size());
  EXPECT_GT(r.handoffs, 0u);
  EXPECT_EQ(r.handoff_budget_exhausted, r.handoffs);
  EXPECT_EQ(r.handoff_retries, r.handoffs * 3u);
  EXPECT_GE(r.handoff_recomputes, r.handoff_budget_exhausted);
  EXPECT_EQ(r.handoff_bytes, 0.0);
}

// Every handoff stream is corrupted in transit: CRC detects each one on
// arrival and the decode side recomputes — wire time paid, no silent
// corruption, no lost request.
TEST(DisaggTest, CorruptHandoffsAreDetectedAndRecomputed) {
  const std::vector<Request> trace = serving::generate_trace(disagg_trace());
  FleetConfig cfg = disagg_fleet(2, 2);
  cfg.engine.faults.migration_corruption_prob = 1.0;
  const FleetResult r = run_fleet(cfg, trace);
  expect_all_terminal(r, trace.size());
  EXPECT_GT(r.handoffs, 0u);
  EXPECT_EQ(r.handoff_corruptions, r.handoffs);
  EXPECT_GE(r.handoff_recomputes, r.handoff_corruptions);
  EXPECT_GT(r.handoff_bytes, 0.0);
}

// --- Backpressure ------------------------------------------------------------

// An absurdly low decode watermark saturates immediately: admission is
// deferred (backpressure on the prefill pool) but every arrival is
// eventually admitted and reaches a terminal state — backpressure can
// stall an arrival, never strand it.
TEST(DisaggTest, DecodeSaturationDefersButNeverStrandsArrivals) {
  const std::vector<Request> trace = serving::generate_trace(disagg_trace());
  FleetConfig cfg = disagg_fleet(1, 1);
  cfg.decode_watermark = 0.02;
  const FleetResult r = run_fleet(cfg, trace);
  expect_all_terminal(r, trace.size());
  EXPECT_GT(r.backpressure_deferrals, 0u);
  EXPECT_EQ(r.routed, trace.size());
}

// --- Zero-byte migration audit ----------------------------------------------

// A zero-byte stream never touches the wire: no transfer time and no
// corruption Bernoulli draw. Regression for RNG draw-order parity — an
// empty migration must leave the fault stream exactly where it was, so
// the draws that follow it match a run that never made the call.
TEST(MigrationChannelTest, ZeroByteMigrateDrawsNoCorruption) {
  FaultPlan plan;
  plan.seed = 7;
  plan.migration_corruption_prob = 1.0;  // any draw would fire
  FaultInjector with_empty(plan);
  FaultInjector without(plan);
  MigrationChannel ch(1e9);

  const MigrationChannel::Outcome z = ch.migrate(0, &with_empty);
  EXPECT_FALSE(z.corrupted);
  EXPECT_EQ(z.transfer_s, 0.0);
  EXPECT_EQ(with_empty.injected_migration_corruptions(), 0u);

  // Draw-order parity: after the zero-byte call the two injectors'
  // streams are still in lockstep, draw for draw.
  plan.migration_corruption_prob = 0.5;
  FaultInjector a(plan);
  FaultInjector b(plan);
  (void)ch.migrate(0, &a);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.corrupt_migration(), b.corrupt_migration());
  }
}

}  // namespace
}  // namespace turbo::fleet
