#include "baselines/lowrank.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

// Build an exactly rank-r matrix A = U V^T.
MatrixF exact_rank(std::size_t m, std::size_t n, std::size_t r,
                   std::uint64_t seed) {
  const MatrixF u = test::random_matrix(m, r, seed);
  const MatrixF v = test::random_matrix(n, r, seed + 1);
  MatrixF out(m, n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t x = 0; x < r; ++x) acc += u(i, x) * v(j, x);
      out(i, j) = acc;
    }
  }
  return out;
}

TEST(LowRankTest, RecoversExactlyLowRankMatrix) {
  const MatrixF a = exact_rank(32, 16, 3, 1);
  const LowRankFactors f = low_rank_approximate(a, 3, 5, 42);
  const MatrixF back = low_rank_reconstruct(f);
  EXPECT_LT(relative_error(back, a), 1e-4);
}

TEST(LowRankTest, HigherRankNeverWorse) {
  const MatrixF a = test::random_matrix(48, 24, 2);
  double prev = 1e30;
  for (std::size_t r : {1u, 2u, 4u, 8u, 16u}) {
    const LowRankFactors f = low_rank_approximate(a, r, 4, 7);
    const double err = relative_error(low_rank_reconstruct(f), a);
    EXPECT_LE(err, prev + 1e-3) << "rank " << r;
    prev = err;
  }
}

TEST(LowRankTest, RankClampedToMatrixDims) {
  const MatrixF a = test::random_matrix(4, 6, 3);
  const LowRankFactors f = low_rank_approximate(a, 100, 3, 1);
  EXPECT_LE(f.rank(), 4u);
  // Full-rank approximation reconstructs (nearly) exactly.
  EXPECT_LT(relative_error(low_rank_reconstruct(f), a), 1e-4);
}

TEST(LowRankTest, DeterministicForFixedSeed) {
  const MatrixF a = test::random_matrix(16, 16, 4);
  const LowRankFactors f1 = low_rank_approximate(a, 4, 3, 99);
  const LowRankFactors f2 = low_rank_approximate(a, 4, 3, 99);
  EXPECT_EQ(f1.left, f2.left);
  EXPECT_EQ(f1.right, f2.right);
}

TEST(LowRankTest, AddToAccumulates) {
  const MatrixF a = exact_rank(8, 8, 2, 5);
  const LowRankFactors f = low_rank_approximate(a, 2, 5, 1);
  MatrixF target(8, 8, 1.0f);
  low_rank_add_to(f, target);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(target(i, j), 1.0f + a(i, j), 1e-3f);
    }
  }
}

TEST(LowRankTest, CapturesEnergyOfNoisyLowRank) {
  // Low-rank signal + small noise: rank-r recovery leaves only the noise.
  MatrixF a = exact_rank(64, 32, 4, 6);
  Rng rng(7);
  double signal = 0.0;
  for (float& v : a.flat()) {
    signal += v * v;
    v += static_cast<float>(rng.normal(0.0, 0.05));
  }
  const LowRankFactors f = low_rank_approximate(a, 4, 5, 8);
  const MatrixF back = low_rank_reconstruct(f);
  EXPECT_LT(relative_error(back, a), 0.05);
}

TEST(LowRankTest, MemoryBytesCountsBothFactorsFp16) {
  const MatrixF a = test::random_matrix(64, 32, 9);
  const LowRankFactors f = low_rank_approximate(a, 4, 3, 10);
  EXPECT_EQ(f.memory_bytes(), (64u * 4u + 32u * 4u) * 2u);
}

TEST(LowRankTest, ZeroMatrixGivesZeroReconstruction) {
  MatrixF a(16, 8, 0.0f);
  const LowRankFactors f = low_rank_approximate(a, 4, 3, 11);
  const MatrixF back = low_rank_reconstruct(f);
  for (float v : back.flat()) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace turbo
