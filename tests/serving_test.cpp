#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/trace.h"

namespace turbo::serving {
namespace {

TraceConfig small_trace() {
  TraceConfig t;
  t.arrival_rate = 4.0;
  t.duration_s = 20.0;
  t.prompt_log_mean = 5.5;  // median ~245 tokens
  t.prompt_log_std = 0.5;
  t.gen_log_mean = 4.0;     // median ~55 tokens
  t.gen_log_std = 0.5;
  t.seed = 7;
  return t;
}

EngineConfig engine(sim::AttnMethod method, double bits) {
  EngineConfig c;
  c.device = sim::a100_sxm_80gb();
  c.geometry = sim::phi3_medium_geometry();
  c.method = method;
  c.attention.kv_bits = bits;
  return c;
}

TEST(TraceTest, DeterministicAndOrdered) {
  const auto a = generate_trace(small_trace());
  const auto b = generate_trace(small_trace());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
    }
  }
}

TEST(TraceTest, LengthsWithinBounds) {
  TraceConfig t = small_trace();
  t.max_prompt = 512;
  t.max_gen = 64;
  for (const Request& r : generate_trace(t)) {
    EXPECT_GE(r.prompt_tokens, 16u);
    EXPECT_LE(r.prompt_tokens, 512u);
    EXPECT_GE(r.max_new_tokens, 1u);
    EXPECT_LE(r.max_new_tokens, 64u);
    EXPECT_GE(r.arrival_s, 0.0);
    EXPECT_LE(r.arrival_s, t.duration_s);
  }
}

TEST(TraceTest, TruncationGuardsActuallyClamp) {
  // Bounds tight enough that the log-normal draws exceed them routinely:
  // the guards must clamp (samples land exactly on the bound), not merely
  // never be exceeded by luck.
  TraceConfig t = small_trace();
  t.max_prompt = 128;  // median draw ~245 > cap
  t.max_gen = 32;      // median draw ~55 > cap
  std::size_t prompt_clamped = 0;
  std::size_t gen_clamped = 0;
  const auto trace = generate_trace(t);
  ASSERT_GT(trace.size(), 20u);
  for (const Request& r : trace) {
    EXPECT_LE(r.prompt_tokens, t.max_prompt);
    EXPECT_LE(r.max_new_tokens, t.max_gen);
    EXPECT_GE(r.prompt_tokens, 16u);
    EXPECT_GE(r.max_new_tokens, 1u);
    if (r.prompt_tokens == t.max_prompt) ++prompt_clamped;
    if (r.max_new_tokens == t.max_gen) ++gen_clamped;
  }
  EXPECT_GT(prompt_clamped, trace.size() / 4);
  EXPECT_GT(gen_clamped, trace.size() / 4);
  // Clamping must not perturb the arrival process or the other draws:
  // the unclamped config yields the same arrivals in the same order.
  const auto unclamped = generate_trace(small_trace());
  ASSERT_EQ(trace.size(), unclamped.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].arrival_s, unclamped[i].arrival_s);
  }
}

TEST(TraceTest, ClassMixSampledToProportionsAndDeadlinesStamped) {
  TraceConfig t = small_trace();
  t.arrival_rate = 20.0;
  t.duration_s = 200.0;  // ~4000 requests: tight empirical tolerance
  t.class_mix = {0.25, 0.5, 0.25};
  t.ttft_deadline_s = {1.0, 10.0, 0.0};
  t.e2e_deadline_s = {0.0, 0.0, 300.0};
  const auto trace = generate_trace(t);
  ASSERT_GT(trace.size(), 2000u);
  std::array<std::size_t, kServiceClassCount> counts = {0, 0, 0};
  for (const Request& r : trace) {
    const auto c = static_cast<std::size_t>(r.service_class);
    ++counts[c];
    EXPECT_EQ(r.ttft_deadline_s, t.ttft_deadline_s[c]);
    EXPECT_EQ(r.e2e_deadline_s, t.e2e_deadline_s[c]);
  }
  const auto n = static_cast<double>(trace.size());
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.50, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.25, 0.03);
}

TEST(TraceTest, InvalidClassMixRejected) {
  TraceConfig bad_sum = small_trace();
  bad_sum.class_mix = {0.5, 0.5, 0.5};
  EXPECT_THROW(generate_trace(bad_sum), CheckError);
  TraceConfig negative = small_trace();
  negative.class_mix = {-0.2, 1.0, 0.2};
  EXPECT_THROW(generate_trace(negative), CheckError);
}

TEST(TraceTest, DefaultMixPreservesLegacyStream) {
  // The all-standard default draws no class sample, so arrivals and
  // lengths are bit-identical to the pre-service-class generator — and
  // stamping deadlines must not consume randomness either.
  TraceConfig plain = small_trace();
  TraceConfig with_deadlines = small_trace();
  with_deadlines.ttft_deadline_s = {1.0, 5.0, 0.0};
  const auto a = generate_trace(plain);
  const auto b = generate_trace(with_deadlines);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    EXPECT_EQ(a[i].max_new_tokens, b[i].max_new_tokens);
    EXPECT_EQ(a[i].service_class, ServiceClass::kStandard);
    EXPECT_EQ(b[i].ttft_deadline_s, 5.0);  // the standard-class slot
  }
  // A non-degenerate mix draws one extra uniform per request, which is
  // allowed to shift the stream — but the first request's arrival and
  // lengths precede the first class draw and must be untouched.
  TraceConfig mixed = small_trace();
  mixed.class_mix = {0.3, 0.4, 0.3};
  const auto c = generate_trace(mixed);
  ASSERT_FALSE(c.empty());
  EXPECT_EQ(a[0].arrival_s, c[0].arrival_s);
  EXPECT_EQ(a[0].prompt_tokens, c[0].prompt_tokens);
  EXPECT_EQ(a[0].max_new_tokens, c[0].max_new_tokens);
}

TEST(TraceTest, ArrivalRateApproximatelyPoisson) {
  TraceConfig t = small_trace();
  t.arrival_rate = 10.0;
  t.duration_s = 200.0;
  const auto trace = generate_trace(t);
  const double rate = static_cast<double>(trace.size()) / t.duration_s;
  EXPECT_NEAR(rate, 10.0, 1.0);
}

TEST(EngineTest, AllRequestsComplete) {
  const auto trace = generate_trace(small_trace());
  const EngineResult r =
      run_engine(engine(sim::AttnMethod::kTurbo, 4.0), trace);
  const ServingMetrics m = summarize(r);
  EXPECT_EQ(m.completed + m.rejected, trace.size());
  EXPECT_EQ(m.rejected, 0u);
  for (const Request& req : r.requests) {
    EXPECT_TRUE(req.finished());
    EXPECT_GE(req.first_token_s, req.arrival_s);
    EXPECT_GE(req.finish_s, req.first_token_s);
    EXPECT_EQ(req.generated, req.max_new_tokens);
  }
}

TEST(EngineTest, TimestampsMonotoneWithLoad) {
  // Higher arrival rate must not reduce any completion metric.
  TraceConfig light = small_trace();
  TraceConfig heavy = small_trace();
  heavy.arrival_rate = 20.0;
  const auto ml = summarize(run_engine(
      engine(sim::AttnMethod::kFlashFp16, 16.0), generate_trace(light)));
  const auto mh = summarize(run_engine(
      engine(sim::AttnMethod::kFlashFp16, 16.0), generate_trace(heavy)));
  EXPECT_GT(mh.output_tokens_per_s, ml.output_tokens_per_s * 0.9);
  EXPECT_GE(mh.ttft_p99, ml.ttft_p50);  // queueing under load
}

TEST(EngineTest, TurboFinishesTraceSooner) {
  TraceConfig t = small_trace();
  t.arrival_rate = 12.0;
  t.duration_s = 30.0;
  const auto trace = generate_trace(t);
  const auto fp16 =
      run_engine(engine(sim::AttnMethod::kFlashFp16, 16.0), trace);
  const auto turbo = run_engine(engine(sim::AttnMethod::kTurbo, 3.0), trace);
  // Faster decode steps drain the same trace sooner with a no-worse tail.
  EXPECT_LT(turbo.makespan_s, fp16.makespan_s);
  EXPECT_LE(summarize(turbo).ttft_p99, summarize(fp16).ttft_p99 * 1.05);
}

TEST(EngineTest, TurboServesMoreConcurrentRequestsUnderMemoryPressure) {
  // Long prompts push FP16 into its KV memory wall; the compressed cache
  // keeps admitting.
  TraceConfig t = small_trace();
  t.arrival_rate = 12.0;
  t.duration_s = 30.0;
  t.prompt_log_mean = 7.5;  // median ~1800 tokens
  const auto trace = generate_trace(t);
  const auto fp16 =
      run_engine(engine(sim::AttnMethod::kFlashFp16, 16.0), trace);
  const auto turbo = run_engine(engine(sim::AttnMethod::kTurbo, 3.0), trace);
  EXPECT_GT(summarize(turbo).peak_batch, summarize(fp16).peak_batch);
  EXPECT_LT(turbo.makespan_s, fp16.makespan_s);
}

TEST(EngineTest, OversizedRequestRejected) {
  std::vector<Request> trace(1);
  trace[0].prompt_tokens = 1u << 22;  // absurd
  trace[0].max_new_tokens = 8;
  const EngineResult r =
      run_engine(engine(sim::AttnMethod::kFlashFp16, 16.0), trace);
  EXPECT_EQ(r.rejected, 1u);
  EXPECT_EQ(summarize(r).completed, 0u);
}

TEST(EngineTest, BatchCapRespected) {
  EngineConfig cfg = engine(sim::AttnMethod::kTurbo, 4.0);
  cfg.max_batch = 3;
  TraceConfig t = small_trace();
  t.arrival_rate = 50.0;
  t.duration_s = 5.0;
  const EngineResult r = run_engine(cfg, generate_trace(t));
  EXPECT_LE(r.peak_batch, 3u);
}

TEST(EngineTest, MemoryAccounting) {
  const auto trace = generate_trace(small_trace());
  const EngineResult r =
      run_engine(engine(sim::AttnMethod::kFlashFp16, 16.0), trace);
  const double budget = sim::a100_sxm_80gb().hbm_capacity * 0.9 -
                        sim::phi3_medium_geometry().weight_bytes_fp16();
  EXPECT_LE(r.peak_kv_bytes, budget);
  EXPECT_GT(r.peak_kv_bytes, 0.0);
}

TEST(EngineTest, OverloadAccountsForEveryRequestWithoutStarvation) {
  // A page pool far smaller than the trace's working set: the scheduler
  // must preempt, yet every request still completes or is explicitly
  // rejected, and bounded backoff + pinning keeps per-request eviction
  // churn finite (no starvation).
  EngineConfig cfg;
  cfg.device = sim::a100_pcie_40gb();
  cfg.geometry = sim::phi3_mini_geometry();
  cfg.method = sim::AttnMethod::kTurbo;
  cfg.attention.kv_bits = 3.0;
  cfg.memory_headroom = 0.2;
  TraceConfig t = small_trace();
  t.arrival_rate = 24.0;
  t.duration_s = 15.0;
  t.gen_log_mean = 5.5;  // long generations -> decode-time KV growth
  const auto trace = generate_trace(t);
  const EngineResult r = run_engine(cfg, trace);
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_GT(r.preemptions, 0u);
  const ServingMetrics m = summarize(r);
  EXPECT_EQ(m.completed + m.rejected, trace.size());
  std::size_t preempted_then_finished = 0;
  for (const Request& req : r.requests) {
    EXPECT_TRUE(req.finished());
    if (req.started()) {
      EXPECT_EQ(req.generated, req.max_new_tokens);
      if (req.preemptions > 0) ++preempted_then_finished;
    }
    // Pinning bounds eviction churn well below "preempted every step".
    EXPECT_LE(req.preemptions,
              cfg.pin_after_preemptions + 8);
  }
  EXPECT_GT(preempted_then_finished, 0u);
  EXPECT_EQ(r.max_preemptions_single_request,
            [&] {
              std::size_t worst = 0;
              for (const Request& req : r.requests) {
                worst = std::max(worst, req.preemptions);
              }
              return worst;
            }());
}

TEST(EngineTest, BothPreemptModesDrainTheTrace) {
  EngineConfig cfg;
  cfg.device = sim::a100_pcie_40gb();
  cfg.geometry = sim::phi3_mini_geometry();
  cfg.method = sim::AttnMethod::kTurbo;
  cfg.attention.kv_bits = 3.0;
  cfg.memory_headroom = 0.2;
  TraceConfig t = small_trace();
  t.arrival_rate = 24.0;
  t.duration_s = 10.0;
  t.gen_log_mean = 5.5;
  const auto trace = generate_trace(t);

  cfg.preempt_mode = PreemptMode::kSwap;
  const EngineResult swap = run_engine(cfg, trace);
  cfg.preempt_mode = PreemptMode::kRecompute;
  const EngineResult recompute = run_engine(cfg, trace);

  for (const EngineResult* r : {&swap, &recompute}) {
    EXPECT_FALSE(r->hit_time_limit);
    const ServingMetrics m = summarize(*r);
    EXPECT_EQ(m.completed + m.rejected, trace.size());
    EXPECT_GT(r->preemptions, 0u);
  }
  // Each mode charges its own cost: swap moves bytes over PCIe,
  // recompute never touches the host link.
  EXPECT_GT(swap.preempted_swap, 0u);
  EXPECT_GT(swap.swap_out_bytes, 0.0);
  EXPECT_GT(swap.swap_stall_s, 0.0);
  EXPECT_EQ(swap.preempted_recompute, 0u);
  EXPECT_GT(recompute.preempted_recompute, 0u);
  EXPECT_EQ(recompute.swap_out_bytes, 0.0);
  EXPECT_EQ(recompute.swap_stall_s, 0.0);
}

TEST(MetricsTest, ZeroGenerationRequestsExcludedFromLatencyPercentiles) {
  // A max_new_tokens == 0 request (prefill-only, e.g. scoring) produces no
  // output token: it must not contribute a degenerate TTFT/e2e sample.
  std::vector<Request> trace(2);
  trace[0].id = 0;
  trace[0].arrival_s = 0.0;
  trace[0].prompt_tokens = 512;
  trace[0].max_new_tokens = 0;
  trace[1].id = 1;
  trace[1].arrival_s = 0.0;
  trace[1].prompt_tokens = 512;
  trace[1].max_new_tokens = 16;
  const EngineResult r =
      run_engine(engine(sim::AttnMethod::kTurbo, 4.0), trace);
  ASSERT_TRUE(r.requests[0].finished());
  EXPECT_EQ(r.requests[0].generated, 0u);
  EXPECT_LT(r.requests[0].first_token_s, 0.0);  // never stamped
  ASSERT_TRUE(r.requests[1].finished());
  const ServingMetrics m = summarize(r);
  EXPECT_EQ(m.completed, 2u);
  // Percentiles come from the generating request alone.
  EXPECT_FLOAT_EQ(static_cast<float>(m.ttft_p50),
                  static_cast<float>(r.requests[1].ttft()));
  EXPECT_FLOAT_EQ(static_cast<float>(m.ttft_p99),
                  static_cast<float>(r.requests[1].ttft()));
  EXPECT_FLOAT_EQ(static_cast<float>(m.e2e_p50),
                  static_cast<float>(r.requests[1].e2e_latency()));
}

TEST(MetricsTest, UtilizationBounded) {
  const auto trace = generate_trace(small_trace());
  const ServingMetrics m = summarize(
      run_engine(engine(sim::AttnMethod::kKiviFlash, 4.0), trace));
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0 + 1e-9);
  EXPECT_GE(m.ttft_p99, m.ttft_p50);
  EXPECT_GE(m.e2e_p99, m.e2e_p50);
}

}  // namespace
}  // namespace turbo::serving
