#include "linear/quantized_linear.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/stats.h"
#include "tests/test_util.h"

namespace turbo::linear {
namespace {

TEST(QuantizedLinearTest, W8ForwardCloseToFp32) {
  const MatrixF w = test::random_matrix(32, 64, 1, 0.05);
  const MatrixF x = test::random_matrix(8, 64, 2);
  QuantizedLinear layer(w, WeightScheme::kW8);
  const MatrixF exact = matmul_transposed(x, w);
  const MatrixF quant = layer.forward(x);
  // W8A8: ~1% relative error on Gaussian data.
  EXPECT_LT(relative_error(quant, exact), 0.02);
}

TEST(QuantizedLinearTest, W4NoisierThanW8ButBounded) {
  const MatrixF w = test::random_matrix(48, 48, 3, 0.05);
  const MatrixF x = test::random_matrix(8, 48, 4);
  QuantizedLinear w8(w, WeightScheme::kW8);
  QuantizedLinear w4(w, WeightScheme::kW4);
  const MatrixF exact = matmul_transposed(x, w);
  const double e8 = relative_error(w8.forward(x), exact);
  const double e4 = relative_error(w4.forward(x), exact);
  EXPECT_GT(e4, e8);
  EXPECT_LT(e4, 0.15);
}

TEST(QuantizedLinearTest, ForwardMatchesDequantizedWithinActivationError) {
  // forward() differs from forward_dequantized() only by the activation
  // quantization (INT8 per token): a small, bounded gap.
  const MatrixF w = test::random_matrix(24, 32, 5, 0.1);
  const MatrixF x = test::random_matrix(4, 32, 6);
  QuantizedLinear layer(w, WeightScheme::kW8);
  const double gap = relative_error(layer.forward(x),
                                    layer.forward_dequantized(x));
  EXPECT_LT(gap, 0.02);
  EXPECT_GT(gap, 0.0);
}

TEST(QuantizedLinearTest, MemoryFootprint) {
  const MatrixF w = test::random_matrix(64, 128, 7, 0.05);
  QuantizedLinear w8(w, WeightScheme::kW8);
  QuantizedLinear w4(w, WeightScheme::kW4);
  EXPECT_EQ(w8.memory_bytes(), 64u * 128u + 64u * 2u);
  EXPECT_LT(w4.memory_bytes(), w8.memory_bytes() * 0.7);
  // Both far below FP16 storage.
  EXPECT_LT(w8.memory_bytes(), 64u * 128u * 2u);
}

TEST(QuantizedLinearTest, ShapesValidated) {
  const MatrixF w = test::random_matrix(8, 16, 8);
  QuantizedLinear layer(w, WeightScheme::kW8);
  EXPECT_EQ(layer.in_features(), 16u);
  EXPECT_EQ(layer.out_features(), 8u);
  const MatrixF bad = test::random_matrix(2, 8, 9);
  EXPECT_THROW(layer.forward(bad), CheckError);
}

TEST(QuantizedLinearTest, OutlierRowGetsOwnScale) {
  // One huge output channel must not destroy the others' precision.
  MatrixF w = test::random_matrix(16, 32, 10, 0.05);
  for (std::size_t c = 0; c < 32; ++c) w(3, c) *= 100.0f;
  const MatrixF x = test::random_matrix(4, 32, 11);
  QuantizedLinear layer(w, WeightScheme::kW8);
  const MatrixF exact = matmul_transposed(x, w);
  const MatrixF quant = layer.forward(x);
  // Error of the non-outlier rows only.
  double err = 0.0;
  double norm = 0.0;
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t r = 0; r < 16; ++r) {
      if (r == 3) continue;
      const double d = quant(t, r) - exact(t, r);
      err += d * d;
      norm += exact(t, r) * exact(t, r);
    }
  }
  EXPECT_LT(std::sqrt(err / norm), 0.02);
}

}  // namespace
}  // namespace turbo::linear
