#include "common/fp16.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace turbo {
namespace {

TEST(Fp16Test, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(round_to_fp16(f), f) << "integer " << i;
  }
}

TEST(Fp16Test, KnownBitPatterns) {
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half_bits(1.0f), 0x3c00);
  EXPECT_EQ(float_to_half_bits(-1.0f), 0xbc00);
  EXPECT_EQ(float_to_half_bits(2.0f), 0x4000);
  EXPECT_EQ(float_to_half_bits(0.5f), 0x3800);
  EXPECT_EQ(float_to_half_bits(65504.0f), 0x7bff);  // max finite half
}

TEST(Fp16Test, RoundTripHalfBits) {
  // Every finite half value must round-trip exactly through float.
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = half_bits_to_float(h);
    if (std::isnan(f)) continue;  // NaN payloads need not be preserved
    EXPECT_EQ(float_to_half_bits(f), h) << "bits 0x" << std::hex << bits;
  }
}

TEST(Fp16Test, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(round_to_fp16(1.0e6f)));
  EXPECT_TRUE(std::isinf(round_to_fp16(-1.0e6f)));
  EXPECT_LT(round_to_fp16(-1.0e6f), 0.0f);
  // 65520 is the rounding boundary: everything >= it overflows.
  EXPECT_TRUE(std::isinf(round_to_fp16(65520.0f)));
  EXPECT_EQ(round_to_fp16(65519.0f), 65504.0f);
}

TEST(Fp16Test, UnderflowToZero) {
  EXPECT_EQ(round_to_fp16(1.0e-10f), 0.0f);
  // Smallest subnormal half is 2^-24 ~= 5.96e-8.
  EXPECT_GT(round_to_fp16(6.0e-8f), 0.0f);
}

TEST(Fp16Test, SubnormalValues) {
  const float tiny = std::ldexp(1.0f, -24);  // smallest subnormal
  EXPECT_EQ(round_to_fp16(tiny), tiny);
  const float sub = std::ldexp(3.0f, -24);
  EXPECT_EQ(round_to_fp16(sub), sub);
}

TEST(Fp16Test, RoundToNearestEven) {
  // 2049 is halfway between 2048 and 2050 in half precision; RNE picks
  // the even mantissa (2048).
  EXPECT_EQ(round_to_fp16(2049.0f), 2048.0f);
  EXPECT_EQ(round_to_fp16(2051.0f), 2052.0f);
}

TEST(Fp16Test, RelativeErrorBound) {
  // Max relative rounding error of binary16 normals is 2^-11.
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const float x =
        static_cast<float>(rng.normal(0.0, 100.0));
    if (x == 0.0f) continue;
    const float r = round_to_fp16(x);
    EXPECT_LE(std::abs(r - x) / std::abs(x), 1.0 / 2048.0 + 1e-7)
        << "value " << x;
  }
}

TEST(Fp16Test, NanPropagates) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(round_to_fp16(nan)));
}

TEST(Fp16Test, InfinityPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(round_to_fp16(inf)));
  EXPECT_TRUE(std::isinf(round_to_fp16(-inf)));
  EXPECT_LT(round_to_fp16(-inf), 0.0f);
}

TEST(Fp16Test, Fp16ValueType) {
  const Fp16 a(1.5f);
  const Fp16 b(2.5f);
  EXPECT_EQ((a + b).to_float(), 4.0f);
  EXPECT_EQ((b - a).to_float(), 1.0f);
  EXPECT_EQ((a * b).to_float(), 3.75f);
  EXPECT_EQ((b / a).to_float(), round_to_fp16(2.5f / 1.5f));
  EXPECT_EQ(Fp16::from_bits(0x3c00).to_float(), 1.0f);
}

TEST(Fp16Test, DotProductAccumulatesInFp32) {
  // Sum of 4096 copies of 1.0005: FP16 inputs round to 1.0 + 2^-11-ish,
  // but the accumulation must not saturate at FP16 max.
  std::vector<float> a(70000, 1.0f);
  std::vector<float> b(70000, 1.0f);
  const float dot = fp16_dot_fp32_accumulate(a, b);
  EXPECT_EQ(dot, 70000.0f);  // would be inf if accumulated in FP16
}

TEST(Fp16Test, RoundSpanInPlace) {
  std::vector<float> v{1.0f, 1.0005f, -3.14159f, 65519.0f};
  round_span_to_fp16(v);
  for (float x : v) {
    EXPECT_EQ(x, round_to_fp16(x));  // idempotent
  }
}

}  // namespace
}  // namespace turbo
