// Shared helpers for the test suite.
#pragma once

#include <cstdint>

#include "common/matrix.h"
#include "common/rng.h"

namespace turbo::test {

// Random normal matrix with the given stddev.
inline MatrixF random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed, double stddev = 1.0) {
  MatrixF m(rows, cols);
  Rng rng(seed);
  rng.fill_normal(m.flat(), 0.0, stddev);
  return m;
}

// Random matrix with heavy per-channel outliers: a few columns scaled up,
// mimicking the channel-outlier structure of real K/V caches (Fig. 4).
inline MatrixF random_outlier_matrix(std::size_t rows, std::size_t cols,
                                     std::uint64_t seed,
                                     double outlier_scale = 8.0,
                                     std::size_t n_outliers = 4) {
  MatrixF m = random_matrix(rows, cols, seed);
  Rng rng(seed ^ 0xabcdef);
  for (std::size_t i = 0; i < n_outliers && i < cols; ++i) {
    const std::size_t c = rng.uniform_index(cols);
    for (std::size_t r = 0; r < rows; ++r) {
      m(r, c) *= static_cast<float>(outlier_scale);
    }
  }
  return m;
}

}  // namespace turbo::test
