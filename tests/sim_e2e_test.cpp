#include "sim/e2e_model.h"

#include <gtest/gtest.h>

#include "sim/device.h"

namespace turbo::sim {
namespace {

InferenceConfig config(AttnMethod m, double kv_bits, std::size_t batch,
                       std::size_t prompt, std::size_t gen) {
  InferenceConfig c;
  c.method = m;
  c.attention.kv_bits = kv_bits;
  c.batch = batch;
  c.prompt = prompt;
  c.generate = gen;
  return c;
}

TEST(GeometryTest, ParameterCountsNearPublished) {
  // Within ~15% of the published totals (we count decoder + embeddings).
  EXPECT_NEAR(llama3_8b_geometry().params(), 8.0e9, 1.3e9);
  EXPECT_NEAR(phi3_mini_geometry().params(), 3.8e9, 0.7e9);
  EXPECT_NEAR(phi3_medium_geometry().params(), 14.0e9, 2.2e9);
  EXPECT_NEAR(qwen2_7b_geometry().params(), 7.6e9, 1.4e9);
}

TEST(E2ETest, AttentionShareGrowsWithContext) {
  // Figure 1a: attention dominates end-to-end latency at long context.
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();
  double prev_share = 0.0;
  for (std::size_t prompt : {1024u, 8192u, 32768u, 81920u}) {
    const E2EBreakdown b = prefill_breakdown(
        dev, g, config(AttnMethod::kFlashFp16, 16, 1, prompt, 1));
    const double share = b.attention() / b.total();
    EXPECT_GT(share, prev_share) << "prompt " << prompt;
    prev_share = share;
  }
  // Paper: up to ~80% at >80k context.
  EXPECT_GT(prev_share, 0.6);
}

TEST(E2ETest, DecodeStepLatencyOrdering) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();
  const std::size_t ctx = 16384;
  const double flash =
      decode_step_breakdown(dev, g,
                            config(AttnMethod::kFlashFp16, 16, 4, ctx, 1),
                            ctx)
          .total();
  const double kivi =
      decode_step_breakdown(dev, g,
                            config(AttnMethod::kKiviFlash, 4, 4, ctx, 1),
                            ctx)
          .total();
  const double turbo =
      decode_step_breakdown(dev, g, config(AttnMethod::kTurbo, 4, 4, ctx, 1),
                            ctx)
          .total();
  EXPECT_LT(turbo, flash);
  EXPECT_GT(kivi, flash);
}

TEST(E2ETest, GenerationLatencyPositiveAndMonotonicInBatch) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_mini_geometry();
  double prev = 0.0;
  for (std::size_t batch : {1u, 4u, 16u}) {
    const double t = generation_latency(
        dev, g, config(AttnMethod::kTurbo, 4, batch, 1024, 128));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(E2ETest, MemoryUseComponents) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();
  const MemoryUse m =
      memory_use(dev, g, config(AttnMethod::kFlashFp16, 16, 4, 4096, 128));
  EXPECT_NEAR(m.weights, 28e9, 5e9);  // ~14B params FP16
  EXPECT_GT(m.kv_cache, 0.0);
  EXPECT_TRUE(m.fits);
}

TEST(E2ETest, TurboKvCacheMuchSmaller) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();
  const MemoryUse fp16 =
      memory_use(dev, g, config(AttnMethod::kFlashFp16, 16, 4, 32768, 128));
  const MemoryUse turbo =
      memory_use(dev, g, config(AttnMethod::kTurbo, 3, 4, 32768, 128));
  EXPECT_GT(fp16.kv_cache / turbo.kv_cache, 4.0);
}

TEST(E2ETest, MaxBatchLargerForTurbo) {
  // Figure 7a's mechanism: the compressed cache admits a larger batch
  // before OOM, which is what lifts maximum throughput.
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();
  const std::size_t fp16_max =
      max_batch(dev, g, config(AttnMethod::kFlashFp16, 16, 1, 1024, 125));
  const std::size_t turbo_max =
      max_batch(dev, g, config(AttnMethod::kTurbo, 3, 1, 1024, 125));
  EXPECT_GT(fp16_max, 0u);
  EXPECT_GT(turbo_max, fp16_max);
}

TEST(E2ETest, ThroughputZeroWhenOom) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();
  const InferenceConfig huge =
      config(AttnMethod::kFlashFp16, 16, 4096, 32768, 128);
  EXPECT_FALSE(memory_use(dev, g, huge).fits);
  EXPECT_EQ(throughput_tokens_per_second(dev, g, huge), 0.0);
}

TEST(E2ETest, MaxThroughputTurboBeatsBaseline) {
  // Paper headline: up to 2.37x maximum throughput over FP16.
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = phi3_medium_geometry();

  // Each method runs at its own largest feasible batch — the compressed
  // cache admits ~3.7x the batch, which is what lifts maximum throughput.
  auto max_throughput = [&](AttnMethod m, double kv_bits) {
    InferenceConfig c = config(m, kv_bits, 1, 1024, 125);
    const std::size_t mb = max_batch(dev, g, c);
    double best = 0.0;
    for (std::size_t b = 1; b <= mb; b = b * 2) {
      c.batch = b;
      best = std::max(best, throughput_tokens_per_second(dev, g, c));
    }
    c.batch = mb;
    best = std::max(best, throughput_tokens_per_second(dev, g, c));
    return best;
  };

  const double fp16 = max_throughput(AttnMethod::kFlashFp16, 16);
  const double turbo = max_throughput(AttnMethod::kTurbo, 3);
  // Paper: up to 2.37x maximum throughput.
  EXPECT_GT(turbo / fp16, 1.5);
  EXPECT_LT(turbo / fp16, 4.0);
}

TEST(E2ETest, PrefillBreakdownAdditive) {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry g = llama3_8b_geometry();
  const E2EBreakdown b = prefill_breakdown(
      dev, g, config(AttnMethod::kTurbo, 4, 2, 2048, 1));
  EXPECT_NEAR(b.total(), b.linear + b.attention(), 1e-12);
  EXPECT_GT(b.linear, 0.0);
  EXPECT_GT(b.attention(), 0.0);
}

}  // namespace
}  // namespace turbo::sim
