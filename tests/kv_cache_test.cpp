#include "kvcache/quantized_kv_cache.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/stats.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

Int8Tile make_tile(const MatrixF& m) { return quantize_tile_int8(m); }

TEST(KvCacheTest, PrefillBlocksStored) {
  QuantizedKvCache cache(16, BitWidth::kInt4, 64, 64);
  const MatrixF k = test::random_matrix(64, 16, 1);
  const MatrixF v = test::random_matrix(64, 16, 2);
  cache.append_prefill_block(make_tile(k), make_tile(v));
  EXPECT_EQ(cache.token_count(), 64u);
  EXPECT_EQ(cache.block_count(), 1u);
  EXPECT_EQ(cache.block(0).tokens(), 64u);
}

TEST(KvCacheTest, PrefillSeedsBufferScales) {
  QuantizedKvCache cache(8, BitWidth::kInt4, 32, 16);
  MatrixF k(32, 8, 0.0f);
  k(0, 0) = 11.9f;  // max-abs 11.9 -> tile scale 0.1
  MatrixF v(32, 8, 0.0f);
  v(0, 0) = 23.8f;
  cache.append_prefill_block(make_tile(k), make_tile(v));
  EXPECT_NEAR(cache.key_buffer().scale(), 0.1f, 1e-6f);
  EXPECT_NEAR(cache.value_buffer().scale(), 0.2f, 1e-6f);
}

TEST(KvCacheTest, DecodeTokensBufferThenFlush) {
  QuantizedKvCache cache(8, BitWidth::kInt4, 64, 4);
  Rng rng(3);
  std::vector<float> k(8);
  std::vector<float> v(8);
  for (int t = 0; t < 3; ++t) {
    rng.fill_normal(k, 0.0, 1.0);
    rng.fill_normal(v, 0.0, 1.0);
    cache.append_token(k, v);
  }
  EXPECT_EQ(cache.block_count(), 0u);
  EXPECT_EQ(cache.token_count(), 3u);
  rng.fill_normal(k, 0.0, 1.0);
  rng.fill_normal(v, 0.0, 1.0);
  cache.append_token(k, v);  // 4th token fills the buffer
  EXPECT_EQ(cache.block_count(), 1u);
  EXPECT_EQ(cache.key_buffer().size(), 0u);
  EXPECT_EQ(cache.token_count(), 4u);
}

TEST(KvCacheTest, FlushCompressesPartialBuffer) {
  QuantizedKvCache cache(4, BitWidth::kInt2, 64, 8);
  std::vector<float> k{1.0f, 2.0f, 3.0f, 4.0f};
  cache.append_token(k, k);
  cache.append_token(k, k);
  cache.flush();
  EXPECT_EQ(cache.block_count(), 1u);
  EXPECT_EQ(cache.block(0).tokens(), 2u);
  EXPECT_EQ(cache.token_count(), 2u);
  cache.flush();  // idempotent on empty buffer
  EXPECT_EQ(cache.block_count(), 1u);
}

TEST(KvCacheTest, ReconstructionAccuracy) {
  QuantizedKvCache cache(16, BitWidth::kInt4, 64, 8);
  const MatrixF k = test::random_matrix(64, 16, 5);
  const MatrixF v = test::random_matrix(64, 16, 6);
  cache.append_prefill_block(make_tile(k), make_tile(v));

  MatrixF k_all = k;
  MatrixF v_all = v;
  Rng rng(7);
  for (int t = 0; t < 5; ++t) {
    std::vector<float> kt(16);
    std::vector<float> vt(16);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    cache.append_token(kt, vt);
    k_all.append_row(std::span<const float>(kt));
    v_all.append_row(std::span<const float>(vt));
  }
  EXPECT_EQ(cache.token_count(), 69u);
  EXPECT_LT(relative_error(cache.reconstruct_keys(), k_all), 0.13);
  EXPECT_LT(relative_error(cache.reconstruct_values(), v_all), 0.13);
}

TEST(KvCacheTest, MemoryFootprintBeatsFp16By4x) {
  // The paper's headline: >4.4x KV-cache reduction at 4-bit.
  QuantizedKvCache cache(128, BitWidth::kInt4, 64, 64);
  const MatrixF k = test::random_matrix(64, 128, 8);
  const MatrixF v = test::random_matrix(64, 128, 9);
  for (int b = 0; b < 16; ++b) {
    cache.append_prefill_block(make_tile(k), make_tile(v));
  }
  const std::size_t fp16_bytes = 16 * 2 * 64 * 128 * 2;
  EXPECT_LT(cache.memory_bytes(),
            static_cast<std::size_t>(fp16_bytes / 3.5));
}

TEST(KvCacheTest, Int2HalvesInt4Footprint) {
  const MatrixF k = test::random_matrix(64, 64, 10);
  QuantizedKvCache c4(64, BitWidth::kInt4, 64, 64);
  QuantizedKvCache c2(64, BitWidth::kInt2, 64, 64);
  c4.append_prefill_block(make_tile(k), make_tile(k));
  c2.append_prefill_block(make_tile(k), make_tile(k));
  EXPECT_LT(c2.memory_bytes(), c4.memory_bytes() * 0.65);
}

TEST(KvCacheTest, PrefillAfterDecodeThrows) {
  QuantizedKvCache cache(4, BitWidth::kInt4, 8, 8);
  std::vector<float> t{1.0f, 2.0f, 3.0f, 4.0f};
  cache.append_token(t, t);
  const MatrixF k = test::random_matrix(8, 4, 11);
  EXPECT_THROW(cache.append_prefill_block(make_tile(k), make_tile(k)),
               CheckError);
}

TEST(KvCacheTest, BlockIndexOutOfRangeThrows) {
  QuantizedKvCache cache(4, BitWidth::kInt4, 8, 8);
  EXPECT_THROW(cache.block(0), CheckError);
}

TEST(KvCacheTest, UniversalScaleSurvivesFlushes) {
  QuantizedKvCache cache(4, BitWidth::kInt4, 64, 2);
  std::vector<float> t{1.0f, -1.0f, 0.5f, -0.5f};
  cache.append_token(t, t);
  const float scale = cache.key_buffer().scale();
  cache.append_token(t, t);  // triggers flush
  EXPECT_EQ(cache.key_buffer().size(), 0u);
  EXPECT_FLOAT_EQ(cache.key_buffer().scale(), scale);
  cache.append_token(t, t);
  EXPECT_FLOAT_EQ(cache.key_buffer().scale(), scale);
}

}  // namespace
}  // namespace turbo
