#include "quant/progressive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "quant/error.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

MatrixI8 random_int8(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  MatrixI8 m(rows, cols);
  Rng rng(seed);
  for (auto& v : m.flat()) {
    v = static_cast<std::int8_t>(
        static_cast<int>(rng.uniform_index(239)) - 119);
  }
  return m;
}

TEST(ProgressiveQuantTest, IntegerScaleAtLeastOne) {
  const MatrixI8 q1 = random_int8(64, 32, 1);
  const ProgressiveBlock b = progressive_compress(q1, 0.01f, BitWidth::kInt4);
  for (const ChannelParams& c : b.channels) {
    EXPECT_GE(c.s_int, 1);
  }
}

TEST(ProgressiveQuantTest, ConstantChannelIsExact) {
  MatrixI8 q1(16, 2, 0);
  for (std::size_t r = 0; r < 16; ++r) {
    q1(r, 0) = 42;
    q1(r, 1) = -77;
  }
  const ProgressiveBlock b = progressive_compress(q1, 1.0f, BitWidth::kInt2);
  const MatrixI8 back = progressive_decompress_int8(b);
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_EQ(back(r, 0), 42);
    EXPECT_EQ(back(r, 1), -77);
  }
}

TEST(ProgressiveQuantTest, ReconstructionErrorBoundedByHalfScale) {
  const MatrixI8 q1 = random_int8(64, 16, 5);
  for (BitWidth bits :
       {BitWidth::kInt2, BitWidth::kInt3, BitWidth::kInt4}) {
    const ProgressiveBlock b = progressive_compress(q1, 1.0f, bits);
    const MatrixI8 back = progressive_decompress_int8(b);
    for (std::size_t c = 0; c < q1.cols(); ++c) {
      // Integer rounding gives |q1 - q1^| <= ceil(s/2); a round-to-nearest
      // scale additionally clips the channel extreme by up to
      // gap - max_code * s.
      int lo = 127;
      int hi = -127;
      for (std::size_t r = 0; r < q1.rows(); ++r) {
        lo = std::min<int>(lo, q1(r, c));
        hi = std::max<int>(hi, q1(r, c));
      }
      const int s = b.channels[c].s_int;
      const int clip = std::max(0, (hi - lo) - max_code(bits) * s);
      const int bound = (s + 1) / 2 + clip;
      for (std::size_t r = 0; r < q1.rows(); ++r) {
        EXPECT_LE(std::abs(q1(r, c) - back(r, c)), bound)
            << "bits=" << bit_count(bits) << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(ProgressiveQuantTest, DecompressFloatAppliesFpScale) {
  MatrixI8 q1(2, 1, 0);
  q1(0, 0) = 100;
  q1(1, 0) = -100;
  const ProgressiveBlock b = progressive_compress(q1, 0.25f, BitWidth::kInt4);
  const MatrixF back = progressive_decompress_float(b);
  const MatrixI8 back_i8 = progressive_decompress_int8(b);
  EXPECT_FLOAT_EQ(back(0, 0), static_cast<float>(back_i8(0, 0)) * 0.25f);
  EXPECT_FLOAT_EQ(back(1, 0), static_cast<float>(back_i8(1, 0)) * 0.25f);
}

TEST(ProgressiveQuantTest, MemoryFootprintShrinks) {
  const MatrixI8 q1 = random_int8(64, 128, 9);
  const ProgressiveBlock b4 = progressive_compress(q1, 1.0f, BitWidth::kInt4);
  const ProgressiveBlock b2 = progressive_compress(q1, 1.0f, BitWidth::kInt2);
  EXPECT_EQ(b4.payload_bytes(), 64u * 128u / 2);
  EXPECT_EQ(b2.payload_bytes(), 64u * 128u / 4);
  // Including metadata, INT4 must beat INT8 by close to 2x and INT2 by 4x.
  EXPECT_LT(b4.memory_bytes(), 64u * 128u * 0.6);
  EXPECT_LT(b2.memory_bytes(), 64u * 128u * 0.35);
}

TEST(ProgressiveQuantTest, FullPipelineFromFloat) {
  const MatrixF tile = test::random_matrix(64, 64, 13);
  const ProgressiveBlock b =
      progressive_compress_from_float(tile, BitWidth::kInt4);
  const MatrixF back = progressive_decompress_float(b);
  EXPECT_LT(relative_error(tile, back), 0.12);
}

TEST(ProgressiveQuantTest, ChannelOutliersHandledByChannelwiseStage) {
  // A channel with large magnitude gets its own (s_int, z_int); the other
  // channels must not lose precision because of it.
  MatrixF tile = test::random_matrix(64, 8, 17);
  for (std::size_t r = 0; r < 64; ++r) tile(r, 3) *= 50.0f;
  const ProgressiveBlock b =
      progressive_compress_from_float(tile, BitWidth::kInt4);
  const MatrixF back = progressive_decompress_float(b);
  // Error of the non-outlier channels only.
  double err = 0.0;
  double norm = 0.0;
  for (std::size_t r = 0; r < 64; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      if (c == 3) continue;
      const double d = tile(r, c) - back(r, c);
      err += d * d;
      norm += tile(r, c) * tile(r, c);
    }
  }
  EXPECT_LT(std::sqrt(err / norm), 0.4);
}

class ProgressiveBitsSweep : public ::testing::TestWithParam<BitWidth> {};

TEST_P(ProgressiveBitsSweep, RoundTripWithinBitDependentBound) {
  const BitWidth bits = GetParam();
  const MatrixF tile = test::random_matrix(64, 64, 19);
  const double err = progressive_quant_rmse(tile, bits, 64);
  // Looser bound for coarser codes.
  const double bound =
      bits == BitWidth::kInt4 ? 0.12 : (bits == BitWidth::kInt3 ? 0.25 : 0.55);
  EXPECT_LT(err, bound);
  // And the two-stage error can never beat the stage-1 error.
  EXPECT_GE(err, symmetric_int8_rmse(tile, 64) * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Widths, ProgressiveBitsSweep,
                         ::testing::Values(BitWidth::kInt2, BitWidth::kInt3,
                                           BitWidth::kInt4));

TEST(ProgressiveQuantTest, RejectsInt8SecondStage) {
  const MatrixI8 q1 = random_int8(8, 8, 21);
  EXPECT_THROW(progressive_compress(q1, 1.0f, BitWidth::kInt8), CheckError);
}

}  // namespace
}  // namespace turbo
