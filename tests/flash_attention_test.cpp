#include "attention/flash.h"

#include <cmath>

#include <gtest/gtest.h>

#include "attention/reference.h"
#include "common/fp16.h"
#include "common/stats.h"
#include "softmax/sas.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

AttentionConfig config(std::size_t br, std::size_t bc, bool causal) {
  AttentionConfig cfg;
  cfg.block_rows = br;
  cfg.block_cols = bc;
  cfg.causal = causal;
  return cfg;
}

TEST(FlashAttentionTest, ExactModeMatchesReferenceTightly) {
  const MatrixF q = test::random_matrix(37, 16, 1);
  const MatrixF k = test::random_matrix(53, 16, 2);
  const MatrixF v = test::random_matrix(53, 16, 3);
  const AttentionConfig cfg = config(16, 16, false);
  FlashOptions options;
  options.emulate_fp16 = false;
  const FlashResult r = flash_attention(q, k, v, cfg, options);
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(max_abs_error(r.o, ref), 1e-5);
}

TEST(FlashAttentionTest, Fp16ModeCloseToReference) {
  const MatrixF q = test::random_matrix(64, 32, 4);
  const MatrixF k = test::random_matrix(64, 32, 5);
  const MatrixF v = test::random_matrix(64, 32, 6);
  const AttentionConfig cfg = config(32, 32, false);
  const FlashResult r = flash_attention(q, k, v, cfg);
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(relative_error(r.o, ref), 5e-3);
}

TEST(FlashAttentionTest, LseMatchesReference) {
  const MatrixF q = test::random_matrix(16, 8, 7);
  const MatrixF k = test::random_matrix(48, 8, 8);
  const MatrixF v = test::random_matrix(48, 8, 9);
  const AttentionConfig cfg = config(8, 16, false);
  FlashOptions options;
  options.emulate_fp16 = false;
  const FlashResult r = flash_attention(q, k, v, cfg, options);
  std::vector<float> ref_lse(16);
  reference_attention_with_lse(q, k, v, cfg, ref_lse);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(r.lse[i], ref_lse[i], 1e-4f);
  }
}

// Tiling must not change the result: sweep (Br, Bc) including ragged tiles.
class FlashTileSweep : public ::testing::TestWithParam<
                           std::tuple<std::size_t, std::size_t, bool>> {};

TEST_P(FlashTileSweep, TileSizeInvariant) {
  const auto [br, bc, causal] = GetParam();
  const MatrixF q = test::random_matrix(70, 16, 10);
  const MatrixF k = test::random_matrix(70, 16, 11);
  const MatrixF v = test::random_matrix(70, 16, 12);
  const AttentionConfig cfg = config(br, bc, causal);
  FlashOptions options;
  options.emulate_fp16 = false;
  const FlashResult r = flash_attention(q, k, v, cfg, options);
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(max_abs_error(r.o, ref), 1e-4)
      << "Br=" << br << " Bc=" << bc << " causal=" << causal;
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, FlashTileSweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{13},
                                         std::size_t{32}, std::size_t{70},
                                         std::size_t{128}),
                       ::testing::Values(std::size_t{1}, std::size_t{17},
                                         std::size_t{64}, std::size_t{128}),
                       ::testing::Bool()));

TEST(FlashAttentionTest, CausalMatchesReference) {
  const MatrixF q = test::random_matrix(33, 8, 13);
  const MatrixF k = test::random_matrix(47, 8, 14);
  const MatrixF v = test::random_matrix(47, 8, 15);
  const AttentionConfig cfg = config(16, 16, true);
  FlashOptions options;
  options.emulate_fp16 = false;
  const FlashResult r = flash_attention(q, k, v, cfg, options);
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(max_abs_error(r.o, ref), 1e-4);
}

TEST(FlashAttentionTest, DecodeMatchesReferenceDecode) {
  const MatrixF k = test::random_matrix(100, 16, 16);
  const MatrixF v = test::random_matrix(100, 16, 17);
  const MatrixF q = test::random_matrix(1, 16, 18);
  AttentionConfig cfg = config(64, 64, true);
  FlashOptions options;
  options.emulate_fp16 = false;
  const auto o = flash_decode(q.row(0), k, v, cfg, options);
  const auto ref = reference_decode(q.row(0), k, v, cfg);
  for (std::size_t c = 0; c < 16; ++c) {
    EXPECT_NEAR(o[c], ref[c], 1e-5f);
  }
}

TEST(FlashAttentionTest, PreroundedSkipsRecopy) {
  MatrixF q = test::random_matrix(8, 8, 19);
  MatrixF k = test::random_matrix(16, 8, 20);
  MatrixF v = test::random_matrix(16, 8, 21);
  round_span_to_fp16(k.flat());
  round_span_to_fp16(v.flat());
  const AttentionConfig cfg = config(8, 8, false);
  FlashOptions pre;
  pre.kv_prerounded = true;
  FlashOptions full;
  const FlashResult a = flash_attention(q, k, v, cfg, pre);
  const FlashResult b = flash_attention(q, k, v, cfg, full);
  EXPECT_LT(max_abs_error(a.o, b.o), 1e-7);
}

TEST(FlashAttentionTest, CustomExpFnIsUsed) {
  // With the SAS exponential plugged in, results match SAS-softmax
  // attention within its error band but differ (slightly) from exact.
  const MatrixF q = test::random_matrix(16, 16, 22);
  const MatrixF k = test::random_matrix(32, 16, 23);
  const MatrixF v = test::random_matrix(32, 16, 24);
  const AttentionConfig cfg = config(16, 16, false);
  const Sas sas;
  FlashOptions options;
  options.emulate_fp16 = false;
  options.exp_fn = [&sas](float x) { return sas.exp_neg(x); };
  const FlashResult with_sas = flash_attention(q, k, v, cfg, options);
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(relative_error(with_sas.o, ref), 2e-2);
  EXPECT_GT(max_abs_error(with_sas.o, ref), 0.0);
}

TEST(FlashAttentionTest, LongContextNumericallyStable) {
  const MatrixF q = test::random_matrix(4, 32, 25);
  const MatrixF k = test::random_matrix(2048, 32, 26);
  const MatrixF v = test::random_matrix(2048, 32, 27);
  const AttentionConfig cfg = config(4, 64, false);
  const FlashResult r = flash_attention(q, k, v, cfg);
  for (float x : r.o.flat()) {
    EXPECT_FALSE(std::isnan(x));
    EXPECT_FALSE(std::isinf(x));
  }
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(relative_error(r.o, ref), 1e-2);
}

}  // namespace
}  // namespace turbo
