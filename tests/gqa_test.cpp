// Grouped-query attention: the attend() contract and the GQA pipeline.
#include <gtest/gtest.h>

#include "attention/turbo_method.h"
#include "baselines/fp16_method.h"
#include "baselines/gear.h"
#include "baselines/kivi.h"
#include "model/pipeline.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

// attend(q) must return exactly what decode(q, k, v) would have returned
// on an identical cache state — i.e. decoding is append + attend.
template <typename Method, typename Config>
void check_attend_contract(Config config) {
  const std::size_t d = 16;
  const MatrixF prompt_q = test::random_matrix(48, d, 1);
  const MatrixF prompt_k = test::random_matrix(48, d, 2);
  const MatrixF prompt_v = test::random_matrix(48, d, 3);

  Method a(d, config);
  Method b(d, config);
  a.prefill(prompt_q, prompt_k, prompt_v);
  b.prefill(prompt_q, prompt_k, prompt_v);

  Rng rng(4);
  for (int t = 0; t < 12; ++t) {
    std::vector<float> q(d);
    std::vector<float> k(d);
    std::vector<float> v(d);
    rng.fill_normal(q, 0.0, 1.0);
    rng.fill_normal(k, 0.0, 1.0);
    rng.fill_normal(v, 0.0, 1.0);
    const auto via_decode = a.decode(q, k, v);
    b.decode(q, k, v);  // same append
    const auto via_attend = b.attend(q);
    ASSERT_EQ(via_decode, via_attend) << "step " << t;
    // attend() must not change cache state.
    ASSERT_EQ(a.token_count(), b.token_count());
    ASSERT_EQ(a.kv_cache_bytes(), b.kv_cache_bytes());
  }
}

TEST(GqaTest, AttendContractFp16) {
  check_attend_contract<Fp16FlashAttention>(AttentionConfig{});
}

TEST(GqaTest, AttendContractExact) {
  check_attend_contract<ExactAttention>(AttentionConfig{});
}

TEST(GqaTest, AttendContractTurbo) {
  TurboMethodConfig cfg;
  cfg.buffer_capacity = 16;
  check_attend_contract<TurboKvAttention>(cfg);
}

TEST(GqaTest, AttendContractTurboSasOnly) {
  TurboMethodConfig cfg;
  cfg.use_flashq = false;
  check_attend_contract<TurboKvAttention>(cfg);
}

TEST(GqaTest, AttendContractKivi) {
  KiviConfig cfg;
  cfg.group = 16;
  cfg.residual = 16;
  check_attend_contract<KiviAttention>(cfg);
}

TEST(GqaTest, AttendContractGear) {
  GearConfig cfg;
  cfg.chunk = 16;
  cfg.residual = 16;
  check_attend_contract<GearAttention>(cfg);
}

TEST(GqaTest, PipelineFidelityCloseToMha) {
  // Sharing a cache across 4 query heads must not change the error scale:
  // the cache is the same; only more queries read it.
  model::QkvGenerator gen(model::llama3_8b_profile(), 9);
  model::PipelineConfig cfg;
  cfg.prefill_tokens = 96;
  cfg.decode_steps = 8;
  TurboMethodConfig tm;
  tm.buffer_capacity = 16;
  const auto mha = measure_fidelity(gen, make_turbo_factory(tm), cfg);
  const auto gqa = measure_fidelity_gqa(gen, make_turbo_factory(tm), cfg, 4);
  EXPECT_LT(gqa.decode_rel_err, mha.decode_rel_err * 2.0);
  EXPECT_GT(gqa.decode_rel_err, 0.0);
  EXPECT_NEAR(gqa.bytes_per_token, mha.bytes_per_token, 1.0);
}

TEST(GqaTest, GroupSizeOneMatchesMha) {
  model::QkvGenerator gen(model::llama3_8b_profile(), 11);
  model::PipelineConfig cfg;
  cfg.prefill_tokens = 64;
  cfg.decode_steps = 4;
  TurboMethodConfig tm;
  tm.buffer_capacity = 16;
  const auto mha = measure_fidelity(gen, make_turbo_factory(tm), cfg);
  const auto gqa = measure_fidelity_gqa(gen, make_turbo_factory(tm), cfg, 1);
  EXPECT_DOUBLE_EQ(gqa.decode_rel_err, mha.decode_rel_err);
  EXPECT_DOUBLE_EQ(gqa.prefill_rel_err, mha.prefill_rel_err);
}

TEST(GqaTest, ExactMethodZeroErrorUnderGqa) {
  model::QkvGenerator gen(model::qwen2_7b_profile(), 13);
  model::PipelineConfig cfg;
  cfg.prefill_tokens = 64;
  cfg.decode_steps = 4;
  const auto f = measure_fidelity_gqa(gen, make_exact_factory({}), cfg, 7);
  EXPECT_EQ(f.prefill_rel_err, 0.0);
  EXPECT_EQ(f.decode_rel_err, 0.0);
}

}  // namespace
}  // namespace turbo
