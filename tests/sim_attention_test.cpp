#include "sim/attention_model.h"

#include <gtest/gtest.h>

#include "sim/device.h"

namespace turbo::sim {
namespace {

AttnShape decode_shape(std::size_t context, std::size_t batch = 4) {
  AttnShape s;
  s.batch = batch;
  s.heads = 40;
  s.kv_heads = 40;  // Phi3-medium attention microbenchmark (MHA layout)
  s.q_len = 1;
  s.kv_len = context;
  s.head_dim = 128;
  return s;
}

AttnShape prefill_shape(std::size_t len, std::size_t batch = 4) {
  AttnShape s = decode_shape(len, batch);
  s.q_len = len;
  return s;
}

AttnCostConfig bits(double b) {
  AttnCostConfig c;
  c.kv_bits = b;
  return c;
}

TEST(AttnModelTest, KvBytesPerToken) {
  const AttnCostConfig fp16 = bits(16);
  const double fp16_b =
      kv_cache_bytes_per_token(AttnMethod::kFlashFp16, fp16, 8, 128);
  EXPECT_DOUBLE_EQ(fp16_b, 2.0 * 8 * 128 * 2);
  const double t4 =
      kv_cache_bytes_per_token(AttnMethod::kTurbo, bits(4), 8, 128);
  // >4x reduction even with metadata (paper: 4.4x headline at 4-bit).
  EXPECT_GT(fp16_b / t4, 3.5);
  const double t3 =
      kv_cache_bytes_per_token(AttnMethod::kTurbo, bits(3), 8, 128);
  EXPECT_GT(fp16_b / t3, 4.4);
  // GEAR carries low-rank factors on top of codes.
  EXPECT_GT(kv_cache_bytes_per_token(AttnMethod::kGearFlash, bits(4), 8, 128),
            kv_cache_bytes_per_token(AttnMethod::kKiviFlash, bits(4), 8, 128));
}

TEST(AttnModelTest, DecodeTurboFasterThanFlash) {
  // Figure 6 decode: Turbo beats FlashAttention-FP16 at every context.
  const DeviceSpec dev = a100_sxm_80gb();
  for (std::size_t ctx : {4096u, 8192u, 16384u, 32768u}) {
    const double flash =
        attention_decode_cost(dev, AttnMethod::kFlashFp16, decode_shape(ctx),
                              bits(16))
            .total();
    const double turbo =
        attention_decode_cost(dev, AttnMethod::kTurbo, decode_shape(ctx),
                              bits(3))
            .total();
    const double speedup = flash / turbo;
    // Paper: up to 1.7x decode speedup.
    EXPECT_GT(speedup, 1.1) << "ctx " << ctx;
    EXPECT_LT(speedup, 2.5) << "ctx " << ctx;
  }
}

TEST(AttnModelTest, FusedTurboBeatsSerializedKiviDecode) {
  // Same payload bits; Turbo's advantage is fusion (no pre-pass).
  const DeviceSpec dev = a100_sxm_80gb();
  const double kivi =
      attention_decode_cost(dev, AttnMethod::kKiviFlash, decode_shape(16384),
                            bits(4))
          .total();
  const double turbo =
      attention_decode_cost(dev, AttnMethod::kTurbo, decode_shape(16384),
                            bits(4))
          .total();
  EXPECT_GT(kivi / turbo, 2.0);
}

TEST(AttnModelTest, DecodeKiviSlowerThanFlash) {
  // Figure 1b / 6: KIVI's separate dequantization pass makes it *slower*
  // than the FP16 baseline despite the smaller cache.
  const DeviceSpec dev = a100_sxm_80gb();
  for (std::size_t ctx : {4096u, 16384u}) {
    const double flash =
        attention_decode_cost(dev, AttnMethod::kFlashFp16, decode_shape(ctx),
                              bits(16))
            .total();
    const double kivi =
        attention_decode_cost(dev, AttnMethod::kKiviFlash, decode_shape(ctx),
                              bits(4))
            .total();
    EXPECT_GT(kivi, flash) << "ctx " << ctx;
  }
}

TEST(AttnModelTest, GearSlowerThanKivi) {
  const DeviceSpec dev = a100_sxm_80gb();
  const double kivi = attention_decode_cost(
                          dev, AttnMethod::kKiviFlash, decode_shape(8192),
                          bits(4))
                          .total();
  const double gear = attention_decode_cost(
                          dev, AttnMethod::kGearFlash, decode_shape(8192),
                          bits(4))
                          .total();
  EXPECT_GT(gear, kivi);
}

TEST(AttnModelTest, PrefillTurboSpeedupInPaperRange) {
  // Figure 6 prefill: up to ~1.8x over FlashAttention-FP16.
  const DeviceSpec dev = a100_sxm_80gb();
  for (std::size_t len : {4096u, 8192u, 16384u}) {
    const double flash =
        attention_prefill_cost(dev, AttnMethod::kFlashFp16,
                               prefill_shape(len), bits(16))
            .total();
    const double turbo = attention_prefill_cost(
                             dev, AttnMethod::kTurbo, prefill_shape(len),
                             bits(3))
                             .total();
    const double speedup = flash / turbo;
    EXPECT_GT(speedup, 1.2) << "len " << len;
    EXPECT_LT(speedup, 2.6) << "len " << len;
  }
}

TEST(AttnModelTest, SoftmaxShareOfFlashPrefill) {
  // Section 4: softmax costs over 30% of FlashAttention execution.
  const DeviceSpec dev = a100_sxm_80gb();
  const PhaseBreakdown b = attention_prefill_cost(
      dev, AttnMethod::kFlashFp16, prefill_shape(8192), bits(16));
  const double share = b.softmax / b.compute();
  EXPECT_GT(share, 0.25);
  EXPECT_LT(share, 0.6);
}

TEST(AttnModelTest, SasShrinksSoftmaxShare) {
  const DeviceSpec dev = a100_sxm_80gb();
  const PhaseBreakdown flash = attention_prefill_cost(
      dev, AttnMethod::kFlashFp16, prefill_shape(8192), bits(16));
  const PhaseBreakdown turbo = attention_prefill_cost(
      dev, AttnMethod::kTurbo, prefill_shape(8192), bits(4));
  EXPECT_LT(turbo.softmax / turbo.compute(),
            0.5 * flash.softmax / flash.compute());
}

TEST(AttnModelTest, DecodeLatencyGrowsWithContext) {
  const DeviceSpec dev = a100_sxm_80gb();
  double prev = 0.0;
  for (std::size_t ctx = 1024; ctx <= 65536; ctx *= 2) {
    const double t = attention_decode_cost(dev, AttnMethod::kTurbo,
                                           decode_shape(ctx), bits(4))
                         .total();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(AttnModelTest, LowerBitsLowerKvTraffic) {
  // Turbo decode is compute-bound once fused, so total latency is flat in
  // bits — but the KV traffic (and thus headroom on bandwidth-starved
  // parts) keeps shrinking.
  const DeviceSpec dev = a100_sxm_80gb();
  const PhaseBreakdown b4 = attention_decode_cost(
      dev, AttnMethod::kTurbo, decode_shape(16384), bits(4));
  const PhaseBreakdown b2 = attention_decode_cost(
      dev, AttnMethod::kTurbo, decode_shape(16384), bits(2));
  EXPECT_LT(b2.kv_io, b4.kv_io);
  EXPECT_LE(b2.total(), b4.total() * 1.0001);
}

TEST(AttnModelTest, BreakdownFieldsNonNegative) {
  const DeviceSpec dev = a100_sxm_80gb();
  for (AttnMethod m : {AttnMethod::kFlashFp16, AttnMethod::kKiviFlash,
                       AttnMethod::kGearFlash, AttnMethod::kTurbo}) {
    const double b = m == AttnMethod::kFlashFp16 ? 16.0 : 4.0;
    const PhaseBreakdown pre = attention_prefill_cost(
        dev, m, prefill_shape(2048), bits(b));
    const PhaseBreakdown dec =
        attention_decode_cost(dev, m, decode_shape(2048), bits(b));
    for (const PhaseBreakdown& pb : {pre, dec}) {
      EXPECT_GE(pb.qk_matmul, 0.0);
      EXPECT_GE(pb.softmax, 0.0);
      EXPECT_GE(pb.pv_matmul, 0.0);
      EXPECT_GE(pb.kv_io, 0.0);
      EXPECT_GE(pb.dequant, 0.0);
      EXPECT_GE(pb.quantize, 0.0);
      EXPECT_GT(pb.total(), 0.0);
    }
  }
}

TEST(AttnModelTest, MethodNames) {
  EXPECT_EQ(attn_method_name(AttnMethod::kFlashFp16), "FlashAttention-FP16");
  EXPECT_EQ(attn_method_name(AttnMethod::kTurbo), "TurboAttention");
}

}  // namespace
}  // namespace turbo::sim
