// Positive fixture for unfaultable-swap-io (loaded as
// src/serving/swap.h): a fetch entry point with no FaultInjector*.
#pragma once
#include <cstdint>
#include <optional>
#include <vector>

class BareStore {
 public:
  void store(std::uint64_t key, std::vector<std::uint8_t> stream);
  std::optional<std::vector<std::uint8_t>> fetch(std::uint64_t key);
};
