// Positive fixture for unordered-float-reduction: double accumulation
// over hash order — the sum's low bits depend on the stdlib.
#include <cstdint>
#include <unordered_map>

struct LatencyBook {
  std::unordered_map<std::uint64_t, double> per_stream_s_;

  double total_seconds() const {
    double total = 0.0;
    for (const auto& [key, seconds] : per_stream_s_) {
      total += seconds;
    }
    return total;
  }
};
