// Suppression fixture: each violation carries its rule's inline marker,
// so the file lints clean — and documents the marker syntax.
#include <cstdint>
#include <unordered_map>
#include <vector>

std::int8_t pack(int v) {
  return static_cast<std::int8_t>(v);  // turbo-lint: allow-narrowing
}

std::vector<int> hash_order(const std::unordered_map<int, int>& m) {
  std::vector<int> out;
  for (const auto& [k, v] : m) {  // turbo-lint: allow-unordered-iter
    out.push_back(v);
  }
  return out;
}
