// Positive fixture for nondeterministic-iteration: unordered iteration
// feeding ordered appends, stream output, and min-selection.
#include <cstdint>
#include <iostream>
#include <unordered_map>
#include <vector>

struct Registry {
  std::unordered_map<std::uint64_t, int> entries_;

  std::vector<std::uint64_t> keys_in_hash_order() const {
    std::vector<std::uint64_t> out;
    for (const auto& [key, value] : entries_) {
      out.push_back(key);  // append order = hash layout
    }
    return out;
  }

  void dump() const {
    for (const auto& [key, value] : entries_) {
      std::cout << key << "=" << value << "\n";
    }
  }

  std::uint64_t coldest() const {
    std::uint64_t best_key = 0;
    int best = 0;
    bool first = true;
    for (const auto& [key, value] : entries_) {
      if (first || value < best) {  // tie order is stdlib-dependent
        best = value;
        best_key = key;
        first = false;
      }
    }
    return best_key;
  }
};
