// Negative fixture for mutable-global-state (loaded as
// src/kernels/fixture.cpp): constants, types, functions and
// function-local state are all fine.
#include <cstddef>

namespace turbo {

constexpr std::size_t kTileBytes = 4096;
const int kLanes = 8;

struct KernelEntry {
  int width = 0;
};

int widen(int w) {
  int local = w * 2;  // locals are per-invocation, not shared
  static const int kStep = 3;
  return local + kStep;
}

}  // namespace turbo
