// Negative fixture: narrowing through the checked helpers, and a wider
// cast that is not 8-bit.
#include <cstdint>

#include "common/numeric.h"

std::int8_t f(float v) {
  return turbo::clamp_to_i8(v);
}

std::int32_t g(long v) {
  return static_cast<std::int32_t>(v);
}
