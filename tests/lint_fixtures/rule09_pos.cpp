// Positive fixture for unsanctioned-entropy: libc rand, hardware
// entropy, wall clocks and pointer-value hashing.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

int noisy_seed() {
  return std::rand();
}

unsigned hardware_seed() {
  std::random_device dev;
  return dev();
}

long long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long wall() {
  return std::time(nullptr);
}

std::uintptr_t addr_hash(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p);
}
