// Negative fixture: the result is consumed (assignment, return,
// condition), and the two-argument overload returns void and is exempt.
#include "kvcache/paged_cache.h"

bool f(turbo::PagedKvCache& cache, int seq, int k, int v) {
  const bool ok = cache.append_token(seq, k, v);
  if (!cache.append_token(seq, k, v)) return false;
  cache.append_token(k, v);  // two-argument overload: returns void
  return ok && cache.append_token(seq, k, v);
}
