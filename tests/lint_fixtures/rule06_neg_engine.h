// Negative fixture for unmirrored-engine-counter: every counter is
// mirrored and assigned, and an annotated engine-private field is an
// accepted exception.
#pragma once
#include <cstddef>

struct EngineResult {
  std::size_t completed = 0;
  bool saturated = false;
  std::size_t scratch_marker = 0;  // turbo-lint: allow-unmirrored
};
