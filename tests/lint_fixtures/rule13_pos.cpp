// Positive fixture for cow-unguarded-page-write: mutating a page payload
// outside the fresh-page allocation sites, with no refcount guard in
// sight — a shared page would be corrupted under every other referent.
#include <cstddef>

struct KvBlock {
  int k = 0;
  int v = 0;
};

struct Cache {
  KvBlock page_data_[8];
  unsigned refcount_[8];

  void rewrite_in_place(std::size_t p) {
    page_data_[p] = KvBlock{};  // unguarded whole-block overwrite
  }
  void patch_member(std::size_t p, int k) {
    page_data_[p].k = k;  // unguarded member write
  }
};
