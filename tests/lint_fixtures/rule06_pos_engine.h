// Positive fixture for unmirrored-engine-counter: `dropped` has no
// ServingMetrics counterpart and is never assigned in metrics.cpp.
#pragma once
#include <cstddef>

struct EngineResult {
  std::size_t completed = 0;
  std::size_t dropped = 0;
  bool saturated = false;
};
