// Negative fixture for unordered-float-reduction: integer accumulation
// is exact and commutative, so hash order can't reach the result.
#include <cstddef>
#include <cstdint>
#include <unordered_map>

struct ByteBook {
  std::unordered_map<std::uint64_t, std::size_t> per_stream_bytes_;

  std::size_t total_bytes() const {
    std::size_t total = 0;
    for (const auto& [key, bytes] : per_stream_bytes_) {
      total += bytes;
    }
    return total;
  }
};
