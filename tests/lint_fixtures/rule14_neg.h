// Negative fixture for unfaultable-snapshot-io (loaded as
// src/serving/snapshot.h): every save/restore signature takes the
// injector, and call sites (store.save(...)) are exempt.
#pragma once
#include <cstddef>

class FaultInjector;

class FaultableSnapshotStore {
 public:
  bool save(std::size_t replica, FaultInjector* fault);
  bool restore(std::size_t replica, FaultInjector* fault);
};

class FaultableEngine {
 public:
  void snapshot_to(FaultableSnapshotStore& store, FaultInjector* fault);
  void restore_from(FaultableSnapshotStore& store, double restart_s,
                    FaultInjector* fault);

  void checkpoint(FaultableSnapshotStore& store, FaultInjector* fault) {
    // Member call sites (this->snapshot_to, store.save) are exempt.
    this->snapshot_to(store, fault);
    store.save(3, fault);
  }
};

inline void recover(FaultableSnapshotStore& store, FaultInjector* fault) {
  store.restore(3, fault);
}
