// Negative fixture: every public entry point validates its shapes.
#include "attention/method.h"

class CarefulAttention : public KvAttention {
 public:
  void prefill(int rows, int cols) {
    TURBO_CHECK(rows > 0 && cols > 0);
    rows_ = rows;
  }
  void decode(int rows, int cols) {
    TURBO_CHECK_MSG(rows > 0 && cols > 0, "bad decode shape");
    rows_ = rows;
  }
  void attend(int rows, int cols) {
    TURBO_CHECK(rows > 0 && cols > 0);
    rows_ = cols;
  }

 private:
  int rows_ = 0;
};
