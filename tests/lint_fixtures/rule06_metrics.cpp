#include "serving/metrics.h"

ServingMetrics collect(const EngineResult& result) {
  ServingMetrics m;
  m.completed = result.completed;
  m.saturated = result.saturated;
  return m;
}
