// Negative fixture for unsanctioned-entropy: seeded draws through
// turbo::Rng, and identifiers that merely *contain* rand/time/clock.
#include <cstdint>

#include "common/rng.h"

double sample(turbo::Rng& rng) {
  return rng.uniform();
}

double gemm_time(double flops) {  // not std::time
  return flops * 1e-12;
}

int operand(int brand) {  // not rand()
  return brand + 1;
}
