// turbo-lint: integer-kernel
// Positive fixture: float type, float literal and std:: math in a file
// tagged integer-kernel.
#include <cmath>

double f(int x) {
  float scale = 1.5f;
  return std::exp(static_cast<double>(x)) * scale;
}
