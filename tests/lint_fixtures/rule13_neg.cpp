// Negative fixture for cow-unguarded-page-write: every page_data_ write
// is either inside a fresh-page allocation site, guarded by a refcount
// comparison, reads only, or carries the suppression marker.
#include <cstddef>

struct KvBlock {
  int k = 0;
  int v = 0;
};

struct Cache {
  KvBlock page_data_[8];
  unsigned refcount_[8];

  bool append_prefill_block(std::size_t p, int k) {
    page_data_[p].k = k;  // fresh page: just allocated by this function
    refcount_[p] = 1;
    return true;
  }
  bool flush_buffer(std::size_t p) {
    page_data_[p] = KvBlock{};  // fresh page again
    refcount_[p] = 1;
    return true;
  }
  void release(std::size_t p) {
    if (--refcount_[p] == 0) {
      page_data_[p] = KvBlock{};  // guarded: provably last reference
    }
  }
  void private_write(std::size_t p, int k) {
    if (refcount_[p] == 1) {
      page_data_[p].k = k;  // guarded: provably private
    }
  }
  int read_only(std::size_t p) const {
    return page_data_[p].k == 0 ? 1 : 0;  // comparison, not a write
  }
  void deliberate(std::size_t p) {
    page_data_[p].v = 1;  // turbo-lint: allow-cow-write
  }
};
