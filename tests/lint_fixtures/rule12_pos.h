// Positive fixture for unfaultable-replica-channel (loaded as
// src/fleet/router.h): a migration entry point with no FaultInjector*.
#pragma once
#include <cstddef>

class BareChannel {
 public:
  double migrate(std::size_t bytes);
  double transfer(std::size_t bytes, double bandwidth);
};

// The prefill→decode handoff path is a channel entry point too: a bare
// handoff signature is just as unfaultable as a bare migrate.
class BareRouter {
 public:
  void handoff(std::size_t request_id);
  void handoff_stream(std::size_t request_id, double bytes);
};
