// Positive fixture for unfaultable-replica-channel (loaded as
// src/fleet/router.h): a migration entry point with no FaultInjector*.
#pragma once
#include <cstddef>

class BareChannel {
 public:
  double migrate(std::size_t bytes);
  double transfer(std::size_t bytes, double bandwidth);
};
