#pragma once
#include <cstddef>

struct ServingMetrics {
  std::size_t completed = 0;
  bool saturated = false;
};
