// Positive fixture: the fallible three-argument append_token discarded
// in statement position and behind a (void) cast.
#include "kvcache/paged_cache.h"

void f(turbo::PagedKvCache& cache, int seq, int k, int v) {
  cache.append_token(seq, k, v);
  (void)cache.append_token(seq, k, v);
}
