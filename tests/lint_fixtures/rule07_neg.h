// Negative fixture for unfaultable-swap-io (loaded as
// src/serving/swap.h): every I/O signature takes the injector, and call
// sites (obj.fetch(...)) are exempt.
#pragma once
#include <cstdint>
#include <optional>
#include <vector>

class FaultInjector;

class FaultableStore {
 public:
  void store(std::uint64_t key, std::vector<std::uint8_t> stream,
             FaultInjector* fault);
  std::optional<std::vector<std::uint8_t>> fetch(std::uint64_t key,
                                                 FaultInjector* fault);
};

inline void drain(FaultableStore& s, FaultInjector* fault) {
  s.fetch(42, fault);
}
