// Negative fixture for nondeterministic-iteration: an order-insensitive
// integer reduction, and the sanctioned sorted-snapshot idiom.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Registry {
  std::unordered_map<std::uint64_t, std::size_t> entries_;

  std::size_t total_bytes() const {
    std::size_t total = 0;
    for (const auto& [key, bytes] : entries_) {
      total += bytes;  // integer addition commutes: order can't matter
    }
    return total;
  }

  std::vector<std::uint64_t> keys_sorted() const {
    std::vector<std::uint64_t> snapshot;
    for (const auto& [key, bytes] : entries_) {
      snapshot.push_back(key);
    }
    std::sort(snapshot.begin(), snapshot.end());
    return snapshot;
  }
};
