// Negative fixture for unfaultable-replica-channel (loaded as
// src/fleet/router.h): every migration signature takes the injector,
// and call sites (chan.migrate(...)) are exempt.
#pragma once
#include <cstddef>

class FaultInjector;

class FaultableChannel {
 public:
  double migrate(std::size_t bytes, FaultInjector* fault);
  double transfer(std::size_t bytes, double bandwidth,
                  FaultInjector* fault);
};

class FaultableRouter {
 public:
  void handoff(std::size_t request_id, FaultInjector* fault);

  void collect(FaultableChannel& chan, FaultInjector* fault) {
    // Member call sites (this->handoff) are exempt, like chan.migrate.
    this->handoff(7, fault);
    chan.migrate(4096, fault);
  }
};

inline void failover(FaultableChannel& chan, FaultInjector* fault) {
  chan.migrate(4096, fault);
}
