// Positive fixture for unfaultable-snapshot-io (loaded as
// src/serving/snapshot.h): snapshot store entry points with no
// FaultInjector*.
#pragma once
#include <cstddef>

class BareSnapshotStore {
 public:
  bool save(std::size_t replica);
  bool restore(std::size_t replica);
};

// The engine-side entry points are store I/O too: a bare snapshot_to /
// restore_from signature is just as unfaultable as a bare save.
class BareEngine {
 public:
  void snapshot_to(BareSnapshotStore& store);
  void restore_from(BareSnapshotStore& store, double restart_s);
};
