// Positive fixture: bare 8-bit narrowing casts fire unchecked-i8-cast.
#include <cstdint>

std::int8_t f(int v) {
  return static_cast<std::int8_t>(v);
}

std::uint8_t g(int v) {
  return static_cast<uint8_t>(v);
}
