// Positive fixture for mutable-global-state (loaded as
// src/kernels/fixture.cpp): a namespace-scope counter, an
// anonymous-namespace cache, and a mutable function-static.
#include <cstddef>

namespace turbo {

std::size_t g_dispatch_calls = 0;

namespace {
int g_last_width = 0;
}  // namespace

int next_id() {
  static int counter = 0;
  return ++counter;
}

}  // namespace turbo
