// Positive fixture: a KvAttention implementation whose decode() never
// validates its inputs with TURBO_CHECK.
#include "attention/method.h"

class SloppyAttention : public KvAttention {
 public:
  void prefill(int rows, int cols) {
    TURBO_CHECK(rows > 0 && cols > 0);
    rows_ = rows;
  }
  void decode(int rows, int cols) {
    rows_ = rows + cols;  // no shape validation
  }
  void attend(int rows, int cols) {
    TURBO_CHECK(rows > 0 && cols > 0);
    rows_ = rows;
  }

 private:
  int rows_ = 0;
};
