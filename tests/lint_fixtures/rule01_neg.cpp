// Negative fixture: TURBO_CHECK is the sanctioned precondition macro,
// and the word assert inside strings/comments ("assert(x)") is opaque
// to the token stream.
#include "common/check.h"

void f(int x) {
  TURBO_CHECK(x > 0);
  const char* doc = "call assert(x) here";
  (void)doc;
}
