// turbo-lint: integer-kernel
// Negative fixture: integer-only arithmetic stays clean, and an
// annotated float line is an accepted, documented exception.
#include <cstdint>

std::int32_t f(std::int32_t x) {
  std::int64_t acc = static_cast<std::int64_t>(x) * 3;
  return static_cast<std::int32_t>(acc >> 2);
}

double g() { return 2.0; }  // turbo-lint: allow-float
