// Positive fixture: raw assert() and <cassert> both fire no-raw-assert.
#include <cassert>

void f(int x) {
  assert(x > 0);
}
