// Crash faults, crash-consistent snapshots and the seeded chaos harness
// (src/serving/snapshot.h, src/fleet/router.h, src/fleet/chaos.h).
//
// The contracts under test: snapshot serialization round-trips through
// the CRC-framed stream format and a flipped byte is detected, never
// silently accepted; the snapshot store's fault hooks are injectable and
// leave the previous snapshot intact on an unavailable save; a mid-run
// crash recovers every in-flight request through the restore ->
// recompute -> dedupe ladder into exactly one terminal state;
// snapshot-enabled recovery recomputes measurably fewer tokens than
// recompute-only recovery; seeded crash and chaos runs are bit-identical
// run to run; a crash that never fires leaves the run bit-identical to a
// crash-free plan; and the post-run chaos audit holds on a composed
// disaster schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/fault.h"
#include "fleet/chaos.h"
#include "fleet/metrics.h"
#include "fleet/router.h"
#include "kvcache/serialization.h"
#include "serving/metrics.h"
#include "serving/snapshot.h"
#include "serving/trace.h"
#include "sim/attention_model.h"

namespace turbo::fleet {
namespace {

using serving::EngineConfig;
using serving::EngineResult;
using serving::Outcome;
using serving::ReplicaSnapshot;
using serving::Request;
using serving::SnapshotEntry;
using serving::SnapshotStore;
using serving::TraceConfig;

// Same workload shape as the fleet router suite: enough concurrent work
// that a mid-run crash loses running, paused and waiting requests alike.
TraceConfig crash_trace() {
  TraceConfig t;
  t.arrival_rate = 24.0;
  t.duration_s = 15.0;
  t.prompt_log_mean = 5.5;
  t.prompt_log_std = 0.5;
  t.gen_log_mean = 5.0;
  t.gen_log_std = 0.5;
  t.seed = 29;
  return t;
}

EngineConfig crash_engine() {
  EngineConfig c;
  c.device = sim::a100_pcie_40gb();
  c.geometry = sim::phi3_mini_geometry();
  c.method = sim::AttnMethod::kTurbo;
  c.attention.kv_bits = 4.0;
  c.memory_headroom = 0.35;
  return c;
}

FleetConfig base_fleet(std::size_t replicas) {
  FleetConfig f;
  f.engine = crash_engine();
  f.replicas = replicas;
  return f;
}

// Crash replica 1 mid-run with a short restart delay.
FleetConfig crash_fleet(std::size_t replicas, double snapshot_interval) {
  FleetConfig f = base_fleet(replicas);
  f.engine.faults.replicas[1].crash_at_s = 6.0;
  f.engine.faults.replicas[1].restart_delay_s = 0.5;
  f.snapshot_interval_s = snapshot_interval;
  return f;
}

// Sum one EngineResult counter over every incarnation in the run.
template <typename F>
std::size_t sum_incarnations(const FleetResult& r, F field) {
  std::size_t total = 0;
  for (const EngineResult& er : r.replica_results) total += field(er);
  return total;
}

std::size_t terminal_count(const FleetResult& r) {
  std::size_t n = 0;
  for (const Request& req : r.requests) {
    if (req.outcome != Outcome::kPending) ++n;
  }
  return n;
}

// Order-independent digest over everything a request carries out of the
// run, the fleet counters, and the per-incarnation crash-recovery
// counters — two runs compare in full.
std::uint64_t digest(const FleetResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  auto mixd = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  std::vector<Request> reqs = r.requests;
  std::sort(reqs.begin(), reqs.end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });
  for (const Request& req : reqs) {
    mix(req.id);
    mixd(req.prefill_start_s);
    mixd(req.first_token_s);
    mixd(req.finish_s);
    mixd(req.kv_bits_used);
    mix(req.generated);
    mix(req.preemptions);
    mix(req.recomputed_tokens);
    mix(req.replica_failovers);
    mix(static_cast<std::uint64_t>(req.outcome));
  }
  mixd(r.makespan_s);
  mix(r.routed);
  mix(r.replica_outages);
  mix(r.failover_drains);
  mix(r.migrations);
  mix(r.migration_corruptions);
  mix(r.migration_recomputes);
  mix(static_cast<std::uint64_t>(r.hit_time_limit));
  mix(r.replica_results.size());
  for (const EngineResult& er : r.replica_results) {
    mix(er.snapshots_written);
    mix(er.snapshot_bytes);
    mix(er.snapshot_restores);
    mix(er.snapshot_corruptions);
    mix(er.restored_requests);
    mix(er.replayed_tokens);
    mix(er.crash_recomputes);
    mix(er.replica_crashes);
    mix(er.dedupe_drops);
  }
  return h;
}

ReplicaSnapshot sample_snapshot() {
  ReplicaSnapshot snap;
  snap.replica = 3;
  snap.taken_at_s = 12.5;
  Request r;
  r.id = 41;
  r.arrival_s = 1.25;
  r.prompt_tokens = 96;
  r.max_new_tokens = 64;
  r.prompt_ids = {7, 11, 13, 17};
  r.service_class = serving::ServiceClass::kInteractive;
  r.ttft_deadline_s = 2.5;
  r.prefill_start_s = 1.5;
  r.first_token_s = 1.75;
  r.generated = 12;
  r.preemptions = 2;
  r.recomputed_tokens = 40;
  r.kv_bits_used = 4.0;
  snap.entries.push_back(SnapshotEntry{r, 108, 52, 0, 432.0, 6912.0});
  Request w;
  w.id = 55;
  w.arrival_s = 12.0;
  w.prompt_tokens = 200;
  w.max_new_tokens = 32;
  snap.entries.push_back(SnapshotEntry{w, 0, 32, 200, 0.0, 0.0});
  return snap;
}

// --- snapshot codec -------------------------------------------------------

TEST(SnapshotCodecTest, RoundTripPreservesEveryField) {
  const ReplicaSnapshot snap = sample_snapshot();
  const std::vector<std::uint8_t> bytes = serving::serialize_snapshot(snap);
  const ReplicaSnapshot back = serving::deserialize_snapshot(bytes);
  EXPECT_EQ(back.replica, snap.replica);
  EXPECT_DOUBLE_EQ(back.taken_at_s, snap.taken_at_s);
  ASSERT_EQ(back.entries.size(), snap.entries.size());
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    const SnapshotEntry& a = snap.entries[i];
    const SnapshotEntry& b = back.entries[i];
    EXPECT_EQ(b.request.id, a.request.id);
    EXPECT_DOUBLE_EQ(b.request.arrival_s, a.request.arrival_s);
    EXPECT_EQ(b.request.prompt_tokens, a.request.prompt_tokens);
    EXPECT_EQ(b.request.prompt_ids, a.request.prompt_ids);
    EXPECT_EQ(b.request.service_class, a.request.service_class);
    EXPECT_DOUBLE_EQ(b.request.first_token_s, a.request.first_token_s);
    EXPECT_EQ(b.request.generated, a.request.generated);
    EXPECT_EQ(b.request.preemptions, a.request.preemptions);
    EXPECT_EQ(b.request.recomputed_tokens, a.request.recomputed_tokens);
    EXPECT_EQ(b.request.outcome, a.request.outcome);
    EXPECT_EQ(b.context, a.context);
    EXPECT_EQ(b.remaining, a.remaining);
    EXPECT_EQ(b.prompt_left, a.prompt_left);
    EXPECT_DOUBLE_EQ(b.kv_bits, a.kv_bits);
    EXPECT_DOUBLE_EQ(b.bytes, a.bytes);
  }
}

TEST(SnapshotCodecTest, FlippedByteFailsTheCrc) {
  std::vector<std::uint8_t> bytes =
      serving::serialize_snapshot(sample_snapshot());
  // Flip one payload byte: the trailing CRC-32 must catch it.
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW(serving::deserialize_snapshot(bytes), turbo::IntegrityError);
}

// --- snapshot store fault hooks -------------------------------------------

TEST(SnapshotStoreTest, UnavailableSaveKeepsThePreviousSnapshot) {
  FaultPlan plan;
  plan.seed = 11;
  plan.snapshot_unavailable_prob = 1.0;
  FaultInjector fault(plan);

  SnapshotStore store;
  ReplicaSnapshot snap = sample_snapshot();
  // First save without the injector: the baseline snapshot lands.
  const auto first = store.save(3, snap, nullptr);
  EXPECT_TRUE(first.stored);
  EXPECT_GT(first.bytes, 0u);
  // Faulted save: nothing written, the baseline survives.
  snap.taken_at_s = 99.0;
  const auto second = store.save(3, snap, &fault);
  EXPECT_FALSE(second.stored);
  EXPECT_EQ(fault.injected_snapshot_unavailable(), 1u);
  const auto restored = store.restore(3, nullptr);
  ASSERT_EQ(restored.status, SnapshotStore::RestoreStatus::kHit);
  EXPECT_DOUBLE_EQ(restored.snapshot.taken_at_s, 12.5);
}

TEST(SnapshotStoreTest, CorruptRestoreIsDetectedAndConsumed) {
  FaultPlan plan;
  plan.seed = 11;
  plan.snapshot_corruption_prob = 1.0;
  FaultInjector fault(plan);

  SnapshotStore store;
  ASSERT_TRUE(store.save(3, sample_snapshot(), nullptr).stored);
  const auto restored = store.restore(3, &fault);
  EXPECT_EQ(restored.status, SnapshotStore::RestoreStatus::kCorrupt);
  EXPECT_EQ(fault.injected_snapshot_corruptions(), 1u);
  // The blob is consumed either way: a second restore misses.
  EXPECT_FALSE(store.contains(3));
  EXPECT_EQ(store.restore(3, nullptr).status,
            SnapshotStore::RestoreStatus::kMissing);
}

// --- crash recovery ladder ------------------------------------------------

TEST(CrashRecoveryTest, CrashBeforeFirstSnapshotRecomputesEverything) {
  // No snapshot cadence: the replacement engine has nothing to restore
  // and every in-flight request with KV re-enters through recompute.
  const FleetResult r =
      run_fleet(crash_fleet(4, 0.0), generate_trace(crash_trace()));
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(terminal_count(r), r.requests.size());
  EXPECT_EQ(r.replica_results.size(), 5u);  // 4 finals + 1 crashed
  EXPECT_EQ(sum_incarnations(
                r, [](const EngineResult& e) { return e.replica_crashes; }),
            1u);
  EXPECT_EQ(sum_incarnations(
                r, [](const EngineResult& e) { return e.snapshot_restores; }),
            0u);
  EXPECT_EQ(sum_incarnations(
                r, [](const EngineResult& e) { return e.restored_requests; }),
            0u);
  EXPECT_GT(sum_incarnations(
                r, [](const EngineResult& e) { return e.crash_recomputes; }),
            0u);
}

TEST(CrashRecoveryTest, SnapshotRestoreBringsRequestsBack) {
  const FleetResult r =
      run_fleet(crash_fleet(4, 1.0), generate_trace(crash_trace()));
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(terminal_count(r), r.requests.size());
  EXPECT_GT(sum_incarnations(
                r, [](const EngineResult& e) { return e.snapshots_written; }),
            0u);
  EXPECT_EQ(sum_incarnations(
                r, [](const EngineResult& e) { return e.snapshot_restores; }),
            1u);
  EXPECT_GT(sum_incarnations(
                r, [](const EngineResult& e) { return e.restored_requests; }),
            0u);
}

TEST(CrashRecoveryTest, CorruptSnapshotFallsBackToRecompute) {
  FleetConfig f = crash_fleet(4, 1.0);
  f.engine.faults.snapshot_corruption_prob = 1.0;
  const FleetResult r = run_fleet(f, generate_trace(crash_trace()));
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(terminal_count(r), r.requests.size());
  EXPECT_EQ(sum_incarnations(
                r,
                [](const EngineResult& e) { return e.snapshot_corruptions; }),
            1u);
  EXPECT_EQ(sum_incarnations(
                r, [](const EngineResult& e) { return e.restored_requests; }),
            0u);
  EXPECT_GT(sum_incarnations(
                r, [](const EngineResult& e) { return e.crash_recomputes; }),
            0u);
}

TEST(CrashRecoveryTest, CompletedPreCrashRequestsAreDeduped) {
  // Crash late enough that requests snapshotted mid-flight have since
  // completed: their stale snapshot entries must be dropped, not re-run.
  FleetConfig f = base_fleet(4);
  f.engine.faults.replicas[1].crash_at_s = 10.0;
  f.engine.faults.replicas[1].restart_delay_s = 0.5;
  f.snapshot_interval_s = 1.0;
  const FleetResult r = run_fleet(f, generate_trace(crash_trace()));
  EXPECT_FALSE(r.hit_time_limit);
  // The fleet union is the exactly-one-terminal-state proof; the dedupe
  // counter shows the ladder actually dropped stale entries.
  EXPECT_EQ(terminal_count(r), r.requests.size());
  EXPECT_GT(sum_incarnations(
                r, [](const EngineResult& e) { return e.dedupe_drops; }),
            0u);
  // The crashed incarnation kept its pre-crash completions.
  ASSERT_EQ(r.replica_results.size(), 5u);
  EXPECT_GT(r.replica_results[4].requests.size(), 0u);
}

TEST(CrashRecoveryTest, SnapshotsRecomputeFewerTokensThanRecomputeOnly) {
  const auto trace = generate_trace(crash_trace());
  const FleetResult without = run_fleet(crash_fleet(4, 0.0), trace);
  const FleetResult with = run_fleet(crash_fleet(4, 1.0), trace);
  const auto recomputed = [](const FleetResult& r) {
    std::size_t total = 0;
    for (const EngineResult& er : r.replica_results) {
      total += er.recomputed_tokens;
    }
    return total;
  };
  const auto replayed = [](const FleetResult& r) {
    std::size_t total = 0;
    for (const EngineResult& er : r.replica_results) {
      total += er.replayed_tokens;
    }
    return total;
  };
  // Snapshot restores re-enter through the swap-in path: measurably
  // fewer KV tokens re-derived than full recompute-from-prompt, and a
  // smaller replay window (post-snapshot delta vs whole context).
  EXPECT_LT(recomputed(with), recomputed(without));
  EXPECT_LT(replayed(with), replayed(without));
  EXPECT_GT(sum_incarnations(
                with,
                [](const EngineResult& e) { return e.restored_requests; }),
            0u);
}

// --- determinism ----------------------------------------------------------

TEST(CrashDeterminismTest, SeededCrashRunIsBitIdentical) {
  const auto trace = generate_trace(crash_trace());
  const FleetResult a = run_fleet(crash_fleet(4, 1.0), trace);
  const FleetResult b = run_fleet(crash_fleet(4, 1.0), trace);
  EXPECT_EQ(digest(a), digest(b));
}

TEST(CrashDeterminismTest, UnfiredCrashLeavesTheRunBitIdentical) {
  // A crash scheduled far past the makespan never fires: pure wall-clock
  // detection must leave the run bit-identical to a crash-free plan.
  const auto trace = generate_trace(crash_trace());
  FleetConfig armed = base_fleet(4);
  armed.engine.faults.replicas[1].crash_at_s = 1.0e6;
  armed.engine.faults.replicas[1].restart_delay_s = 1.0;
  const FleetResult clean = run_fleet(base_fleet(4), trace);
  const FleetResult never = run_fleet(armed, trace);
  EXPECT_EQ(digest(clean), digest(never));
  EXPECT_EQ(never.replica_results.size(), 4u);
}

// --- flapping outages -----------------------------------------------------

TEST(FlappingReplicaTest, EachWindowDrainsTheReplicaAgain) {
  FleetConfig f = base_fleet(4);
  f.engine.faults.replicas[1].add_outage(2.0, 5.0);
  f.engine.faults.replicas[1].add_outage(8.0, 11.0);
  const FleetResult r = run_fleet(f, generate_trace(crash_trace()));
  EXPECT_FALSE(r.hit_time_limit);
  EXPECT_EQ(r.replica_outages, 2u);
  EXPECT_GT(r.failover_drains, 0u);
  EXPECT_EQ(terminal_count(r), r.requests.size());
}

// --- chaos harness --------------------------------------------------------

TEST(ChaosHarnessTest, ComposedScheduleSurvivesTheAudit) {
  FleetConfig f = base_fleet(4);
  apply_chaos(f, 7, 0.8, crash_trace().duration_s);
  // The schedule composes crashes with everything else and always
  // enables snapshots.
  EXPECT_GT(f.snapshot_interval_s, 0.0);
  std::size_t crash_plans = 0;
  for (std::size_t i = 0; i < f.replicas; ++i) {
    if (f.engine.faults.replicas[i].crash_enabled()) ++crash_plans;
  }
  EXPECT_GE(crash_plans, 1u);

  const auto trace = generate_trace(crash_trace());
  const FleetResult r = run_fleet(f, trace);
  const ChaosAudit audit = audit_fleet(r, trace.size());
  EXPECT_TRUE(audit.ok) << (audit.failures.empty()
                                ? std::string("?")
                                : audit.failures.front());
  EXPECT_GT(sum_incarnations(
                r, [](const EngineResult& e) { return e.replica_crashes; }),
            0u);
}

TEST(ChaosHarnessTest, SameSeedSameDisaster) {
  const auto trace = generate_trace(crash_trace());
  FleetConfig a = base_fleet(4);
  FleetConfig b = base_fleet(4);
  apply_chaos(a, 21, 0.6, crash_trace().duration_s);
  apply_chaos(b, 21, 0.6, crash_trace().duration_s);
  EXPECT_EQ(digest(run_fleet(a, trace)), digest(run_fleet(b, trace)));
}

TEST(ChaosHarnessTest, AuditCatchesALostRequest) {
  const auto trace = generate_trace(crash_trace());
  FleetResult r = run_fleet(base_fleet(2), trace);
  ASSERT_TRUE(audit_fleet(r, trace.size()).ok);
  // Drop one terminal request: the audit must notice both the short
  // union and the broken per-incarnation accounting.
  r.requests.pop_back();
  const ChaosAudit broken = audit_fleet(r, trace.size());
  EXPECT_FALSE(broken.ok);
  EXPECT_FALSE(broken.failures.empty());
}

}  // namespace
}  // namespace turbo::fleet
