#include "baselines/kivi.h"

#include <gtest/gtest.h>

#include "attention/reference.h"
#include "common/stats.h"
#include "tests/test_util.h"

namespace turbo {
namespace {

KiviConfig small_config() {
  KiviConfig cfg;
  cfg.attention.block_rows = 32;
  cfg.attention.block_cols = 32;
  cfg.group = 16;
  cfg.residual = 16;
  return cfg;
}

TEST(KiviTest, PrefillMatchesFlashBaseline) {
  // Prefill attention itself is uncompressed — only the cache differs.
  const MatrixF q = test::random_matrix(64, 16, 1);
  const MatrixF k = test::random_matrix(64, 16, 2);
  const MatrixF v = test::random_matrix(64, 16, 3);
  KiviAttention kivi(16, small_config());
  const MatrixF o = kivi.prefill(q, k, v);
  AttentionConfig cfg = small_config().attention;
  const MatrixF ref = reference_attention(q, k, v, cfg);
  EXPECT_LT(relative_error(o, ref), 5e-3);
}

TEST(KiviTest, ResidualWindowBounds) {
  KiviConfig cfg = small_config();
  KiviAttention kivi(8, cfg);
  const MatrixF q = test::random_matrix(100, 8, 4);
  const MatrixF k = test::random_matrix(100, 8, 5);
  const MatrixF v = test::random_matrix(100, 8, 6);
  kivi.prefill(q, k, v);
  // Window keeps between residual and residual + group - 1 tokens.
  EXPECT_GE(kivi.residual_tokens(), cfg.residual);
  EXPECT_LT(kivi.residual_tokens(), cfg.residual + cfg.group);
  EXPECT_EQ(kivi.token_count(), 100u);
}

TEST(KiviTest, DecodeStaysCloseToExact) {
  KiviAttention kivi(16, small_config());
  const MatrixF q = test::random_matrix(80, 16, 7);
  MatrixF k = test::random_matrix(80, 16, 8);
  MatrixF v = test::random_matrix(80, 16, 9);
  kivi.prefill(q, k, v);

  Rng rng(10);
  AttentionConfig cfg = small_config().attention;
  for (int t = 0; t < 20; ++t) {
    std::vector<float> qt(16);
    std::vector<float> kt(16);
    std::vector<float> vt(16);
    rng.fill_normal(qt, 0.0, 1.0);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    const auto o = kivi.decode(qt, kt, vt);
    k.append_row(std::span<const float>(kt));
    v.append_row(std::span<const float>(vt));
    const auto ref = reference_decode(qt, k, v, cfg);
    EXPECT_LT(relative_error(o, ref), 0.15) << "step " << t;
  }
}

TEST(KiviTest, ChunksAccumulateDuringDecode) {
  KiviConfig cfg = small_config();
  KiviAttention kivi(8, cfg);
  const MatrixF prompt = test::random_matrix(16, 8, 11);
  kivi.prefill(prompt, prompt, prompt);
  const std::size_t before = kivi.quantized_chunk_count();
  Rng rng(12);
  std::vector<float> t(8);
  for (int i = 0; i < 64; ++i) {
    rng.fill_normal(t, 0.0, 1.0);
    kivi.decode(t, t, t);
  }
  EXPECT_GT(kivi.quantized_chunk_count(), before);
}

TEST(KiviTest, MemorySmallerThanFp16) {
  KiviConfig cfg = small_config();
  KiviAttention kivi(64, cfg);
  const MatrixF m = test::random_matrix(512, 64, 13);
  kivi.prefill(m, m, m);
  const std::size_t fp16_bytes = 2 * 512 * 64 * 2;
  EXPECT_LT(kivi.kv_cache_bytes(), fp16_bytes / 2);
}

TEST(KiviTest, LowerBitsSmallerCache) {
  const MatrixF m = test::random_matrix(256, 32, 14);
  KiviConfig cfg2 = small_config();
  cfg2.bits = BitWidth::kInt2;
  KiviConfig cfg4 = small_config();
  KiviAttention k2(32, cfg2);
  KiviAttention k4(32, cfg4);
  k2.prefill(m, m, m);
  k4.prefill(m, m, m);
  EXPECT_LT(k2.kv_cache_bytes(), k4.kv_cache_bytes());
}

TEST(KiviTest, FactoryProducesWorkingInstances) {
  const auto factory = make_kivi_factory(small_config());
  auto method = factory(16);
  EXPECT_EQ(method->name(), "KIVI");
  const MatrixF m = test::random_matrix(32, 16, 15);
  method->prefill(m, m, m);
  EXPECT_EQ(method->token_count(), 32u);
}

}  // namespace
}  // namespace turbo
