#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"

namespace turbo {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);  // each bucket near 1000
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, UniformIndexZeroThrows) {
  Rng rng(8);
  EXPECT_THROW(rng.uniform_index(0), CheckError);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, FillNormal) {
  Rng rng(11);
  std::vector<float> v(50000);
  rng.fill_normal(v, -1.0, 0.5);
  double sum = 0.0;
  for (float x : v) sum += x;
  EXPECT_NEAR(sum / static_cast<double>(v.size()), -1.0, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.shuffle(std::span<int>(v));
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace turbo
