// Table 2 — CoT reasoning accuracy across models and compression methods.
//
// Three model profiles x three proxy tasks x {FP16, KIVI, GEAR-L,
// TurboAttention} at ~4-bit and ~3-bit average KV width. Absolute numbers
// are proxy-task accuracies, not GSM8k scores; the reproduction target is
// the *ordering* (FP16 >= Turbo > GEAR-L >= KIVI) and the degradation from
// 4-bit to lower widths.
#include <cstdio>
#include <vector>

#include "bench/task_methods.h"
#include "model/profile.h"
#include "tasks/retrieval.h"

namespace {

using namespace turbo;
using namespace turbo::bench;
using namespace turbo::tasks;

struct ModelEntry {
  model::ModelProfile profile;
};

struct Row {
  std::string method;
  std::string bits;
  std::vector<double> acc;  // model-major, task-minor
};

}  // namespace

int main() {
  const std::vector<model::ModelProfile> models = {
      model::llama3_8b_profile(),
      model::qwen2_7b_profile(),
      model::phi3_mini_profile(),
  };
  using TaskMaker = RetrievalConfig (*)(model::ModelProfile);
  const std::vector<std::pair<const char*, TaskMaker>> task_makers = {
      {"GSM8k", &gsm8k_proxy},
      {"AQuA", &aqua_proxy},
      {"BBH", &bbh_proxy},
  };

  std::printf("=== Table 2 reproduction: proxy-task accuracy (%%): "
              "3 models x {GSM8k, AQuA, BBH} proxies ===\n\n");

  // Build the method list per (model, task) because the mixed-precision
  // row depends on the task's head statistics.
  const std::size_t head_dim = models[0].head_dim;
  std::vector<Row> rows = {
      {"FP16", "16", {}},
      {"KIVI", "4", {}},
      {"GEAR-L(r=4)", "4", {}},
      {"TurboAttention", "4", {}},
      {"KIVI", "3", {}},
      {"GEAR-L(r=4)", "3", {}},
      {"TurboAttention(mixed)", "2/4", {}},
  };

  for (const auto& m : models) {
    for (const auto& [task_name, make_task] : task_makers) {
      const RetrievalConfig task = make_task(m);
      const std::vector<NamedFactory> suite = {
          fp16_method(),
          kivi_method(BitWidth::kInt4, head_dim),
          gear_method(BitWidth::kInt4, head_dim),
          turbo_method(BitWidth::kInt4),
          kivi_method(BitWidth::kInt3, head_dim),
          gear_method(BitWidth::kInt3, head_dim),
          turbo_mixed_method(task, m.heads / 2),
      };
      for (std::size_t i = 0; i < suite.size(); ++i) {
        const TaskResult r = run_retrieval(task, suite[i].factory);
        rows[i].acc.push_back(100.0 * r.accuracy);
      }
      std::fprintf(stderr, "[done] %s / %s\n", m.name.c_str(), task_name);
    }
  }

  // Header.
  std::printf("%-22s %5s |", "Method", "Bit");
  for (const auto& m : models) {
    std::printf(" %-8.8s GSM8k  AQuA   BBH  |", m.name.c_str());
  }
  std::printf("  Ave.\n");

  for (const Row& row : rows) {
    std::printf("%-22s %5s |", row.method.c_str(), row.bits.c_str());
    double sum = 0.0;
    for (std::size_t mi = 0; mi < models.size(); ++mi) {
      std::printf("          ");
      for (std::size_t ti = 0; ti < 3; ++ti) {
        const double a = row.acc[mi * 3 + ti];
        sum += a;
        std::printf("%5.1f ", a);
      }
      std::printf(" |");
    }
    std::printf(" %5.1f\n", sum / static_cast<double>(row.acc.size()));
  }

  std::printf("\nPaper's Table 2 shape: FP16 best; TurboAttention within a "
              "couple of points of FP16 at 4-bit and the best compressed "
              "method; KIVI degrades most; the 2/4 mixed row trades a few "
              "points for 3-bit-equivalent storage.\n");
  return 0;
}
