// Figure 7a — decode throughput vs batch size for Phi3-medium on an
// A100-80GB (context 1k, generate 125). Each method's curve ends at its
// OOM point; "maximum throughput" is the best point on the curve.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/e2e_model.h"

int main() {
  using namespace turbo::sim;
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry geom = phi3_medium_geometry();

  struct MethodRow {
    AttnMethod method;
    double bits;
    const char* label;
  };
  const MethodRow methods[] = {
      {AttnMethod::kFlashFp16, 16.0, "Flash-FP16"},
      {AttnMethod::kKiviFlash, 4.0, "KIVI-4"},
      {AttnMethod::kGearFlash, 4.0, "GEAR-4"},
      {AttnMethod::kTurbo, 4.0, "Turbo-4"},
      {AttnMethod::kTurbo, 3.0, "Turbo-2/4mix"},
  };

  std::printf("=== Figure 7a reproduction: throughput vs batch "
              "(%s, %s, ctx 1k, gen 125) ===\n",
              geom.name.c_str(), dev.name.c_str());
  std::printf("%8s |", "batch");
  for (const auto& m : methods) std::printf(" %13s", m.label);
  std::printf("\n");

  std::vector<double> best(std::size(methods), 0.0);
  std::vector<std::size_t> batches = {1, 2, 4, 8, 16, 32, 48, 64, 96, 128, 176};
  for (std::size_t b : batches) {
    std::printf("%8zu |", b);
    for (std::size_t i = 0; i < std::size(methods); ++i) {
      InferenceConfig c;
      c.method = methods[i].method;
      c.attention.kv_bits = methods[i].bits;
      c.batch = b;
      c.prompt = 1024;
      c.generate = 125;
      const double t = throughput_tokens_per_second(dev, geom, c);
      if (t == 0.0) {
        std::printf(" %13s", "OOM");
      } else {
        std::printf(" %9.0f t/s", t);
        best[i] = std::max(best[i], t);
      }
    }
    std::printf("\n");
  }

  std::printf("\nMaximum throughput (each method at its best batch):\n");
  for (std::size_t i = 0; i < std::size(methods); ++i) {
    std::printf("  %-13s %8.0f tok/s  (%.2fx vs Flash-FP16)\n",
                methods[i].label, best[i], best[i] / best[0]);
  }
  std::printf("Paper headline: up to 2.37x maximum throughput for "
              "TurboAttention.\n");
  return 0;
}
