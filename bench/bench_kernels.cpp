// Measured CPU-kernel microbenchmarks (google-benchmark).
//
// These complement the analytical GPU model with real measured numbers
// for every primitive this library implements: quantization stages,
// packing, SAS vs libm exponentiation, integer vs float matmuls, and the
// end-to-end attention kernels. On the CPU substrate the *relative*
// behaviour (SAS cheaper than expf, INT8 path touching 4x less memory)
// mirrors the GPU argument.
#include <benchmark/benchmark.h>

#include <cmath>

#include "attention/flash.h"
#include "attention/reference.h"
#include "attention/turbo.h"
#include "kernels/fused_decode.h"
#include "common/fp16.h"
#include "common/rng.h"
#include "quant/asymmetric.h"
#include "quant/packing.h"
#include "quant/progressive.h"
#include "quant/symmetric.h"
#include "softmax/sas.h"
#include "softmax/softmax.h"

namespace {

using namespace turbo;

MatrixF random_matrix(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) {
  MatrixF m(rows, cols);
  Rng rng(seed);
  rng.fill_normal(m.flat(), 0.0, 1.0);
  return m;
}

void BM_Fp16Round(benchmark::State& state) {
  std::vector<float> v(4096);
  Rng rng(1);
  rng.fill_normal(v, 0.0, 10.0);
  for (auto _ : state) {
    std::vector<float> copy = v;
    round_span_to_fp16(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Fp16Round);

void BM_QuantizeSymmetricInt8(benchmark::State& state) {
  const MatrixF tile = random_matrix(64, 128, 2);
  for (auto _ : state) {
    Int8Tile q = quantize_tile_int8(tile);
    benchmark::DoNotOptimize(q.q.data());
  }
  state.SetItemsProcessed(state.iterations() * tile.size());
}
BENCHMARK(BM_QuantizeSymmetricInt8);

void BM_ProgressiveCompress(benchmark::State& state) {
  const BitWidth bits = state.range(0) == 2 ? BitWidth::kInt2
                                            : BitWidth::kInt4;
  const Int8Tile tile = quantize_tile_int8(random_matrix(64, 128, 3));
  for (auto _ : state) {
    ProgressiveBlock b = progressive_compress(tile.q, tile.scale, bits);
    benchmark::DoNotOptimize(b.packed.data());
  }
  state.SetItemsProcessed(state.iterations() * tile.q.size());
}
BENCHMARK(BM_ProgressiveCompress)->Arg(2)->Arg(4);

void BM_ProgressiveDecompress(benchmark::State& state) {
  const Int8Tile tile = quantize_tile_int8(random_matrix(64, 128, 4));
  const ProgressiveBlock b =
      progressive_compress(tile.q, tile.scale, BitWidth::kInt4);
  for (auto _ : state) {
    MatrixI8 back = progressive_decompress_int8(b);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetItemsProcessed(state.iterations() * tile.q.size());
}
BENCHMARK(BM_ProgressiveDecompress);

void BM_PackCodes(benchmark::State& state) {
  std::vector<std::uint8_t> codes(8192, 0x5);
  for (auto _ : state) {
    auto packed = pack_codes(codes, BitWidth::kInt4);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetItemsProcessed(state.iterations() * codes.size());
}
BENCHMARK(BM_PackCodes);

// SAS vs libm exponentiation — the Section 4 claim, measured.
void BM_ExpLibm(benchmark::State& state) {
  std::vector<float> x(4096);
  Rng rng(5);
  for (float& v : x) v = static_cast<float>(rng.uniform(-6.0, 0.0));
  for (auto _ : state) {
    float acc = 0.0f;
    for (float v : x) acc += std::exp(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_ExpLibm);

void BM_ExpSas(benchmark::State& state) {
  const Sas sas(SasConfig{.fp16_arithmetic = false});
  std::vector<float> x(4096);
  Rng rng(5);
  for (float& v : x) v = static_cast<float>(rng.uniform(-6.0, 0.0));
  for (auto _ : state) {
    float acc = 0.0f;
    for (float v : x) acc += sas.exp_neg(v);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_ExpSas);

void BM_SoftmaxExact(benchmark::State& state) {
  const MatrixF scores = random_matrix(64, 1024, 6);
  for (auto _ : state) {
    MatrixF p = softmax_rows(scores);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_SoftmaxExact);

void BM_SoftmaxSas(benchmark::State& state) {
  const Sas sas(SasConfig{.fp16_arithmetic = false});
  const MatrixF scores = random_matrix(64, 1024, 6);
  for (auto _ : state) {
    MatrixF p = sas.softmax(scores);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_SoftmaxSas);

void BM_MatmulFloat(benchmark::State& state) {
  const MatrixF a = random_matrix(64, 128, 7);
  const MatrixF b = random_matrix(64, 128, 8);
  for (auto _ : state) {
    MatrixF c = matmul_transposed(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64 * 128);
}
BENCHMARK(BM_MatmulFloat);

void BM_MatmulInt8(benchmark::State& state) {
  const Int8Tile a = quantize_tile_int8(random_matrix(64, 128, 7));
  const Int8Tile b = quantize_tile_int8(random_matrix(64, 128, 8));
  for (auto _ : state) {
    MatrixI32 c = matmul_transposed_i8(a.q, b.q);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64 * 128);
}
BENCHMARK(BM_MatmulInt8);

void BM_ReferenceAttention(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const MatrixF q = random_matrix(n, 64, 9);
  const MatrixF k = random_matrix(n, 64, 10);
  const MatrixF v = random_matrix(n, 64, 11);
  AttentionConfig cfg;
  for (auto _ : state) {
    MatrixF o = reference_attention(q, k, v, cfg);
    benchmark::DoNotOptimize(o.data());
  }
}
BENCHMARK(BM_ReferenceAttention)->Arg(256)->Arg(512);

void BM_FlashAttentionFp16(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const MatrixF q = random_matrix(n, 64, 9);
  const MatrixF k = random_matrix(n, 64, 10);
  const MatrixF v = random_matrix(n, 64, 11);
  AttentionConfig cfg;
  for (auto _ : state) {
    FlashResult r = flash_attention(q, k, v, cfg);
    benchmark::DoNotOptimize(r.o.data());
  }
}
BENCHMARK(BM_FlashAttentionFp16)->Arg(256)->Arg(512);

void BM_TurboPrefill(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const MatrixF q = random_matrix(n, 64, 9);
  const MatrixF k = random_matrix(n, 64, 10);
  const MatrixF v = random_matrix(n, 64, 11);
  AttentionConfig cfg;
  const Sas sas;
  for (auto _ : state) {
    TurboPrefillResult r =
        turbo_attention_prefill(q, k, v, cfg, sas, nullptr);
    benchmark::DoNotOptimize(r.o.data());
  }
}
BENCHMARK(BM_TurboPrefill)->Arg(256)->Arg(512);

void BM_TurboDecode(benchmark::State& state) {
  const std::size_t ctx = static_cast<std::size_t>(state.range(0));
  const MatrixF k = random_matrix(ctx, 64, 12);
  const MatrixF v = random_matrix(ctx, 64, 13);
  const MatrixF qp = random_matrix(ctx, 64, 14);
  AttentionConfig cfg;
  const Sas sas;
  QuantizedKvCache cache(64, BitWidth::kInt4, 64, 64);
  turbo_attention_prefill(qp, k, v, cfg, sas, &cache);
  std::vector<float> q(64, 0.3f);
  for (auto _ : state) {
    auto o = turbo_attention_decode(q, cache, cfg, sas);
    benchmark::DoNotOptimize(o.data());
  }
  state.SetItemsProcessed(state.iterations() * ctx * 64);
}
BENCHMARK(BM_TurboDecode)->Arg(1024)->Arg(4096);

void BM_TurboDecodeFused(benchmark::State& state) {
  // Same workload as BM_TurboDecode through the register-fused kernel
  // (no INT8 K/V materialization) — bit-identical output, less traffic.
  const std::size_t ctx = static_cast<std::size_t>(state.range(0));
  const MatrixF k = random_matrix(ctx, 64, 12);
  const MatrixF v = random_matrix(ctx, 64, 13);
  const MatrixF qp = random_matrix(ctx, 64, 14);
  AttentionConfig cfg;
  const Sas sas;
  QuantizedKvCache cache(64, BitWidth::kInt4, 64, 64);
  turbo_attention_prefill(qp, k, v, cfg, sas, &cache);
  std::vector<float> q(64, 0.3f);
  for (auto _ : state) {
    auto o = fused_turbo_decode(q, cache, cfg, sas);
    benchmark::DoNotOptimize(o.data());
  }
  state.SetItemsProcessed(state.iterations() * ctx * 64);
}
BENCHMARK(BM_TurboDecodeFused)->Arg(1024)->Arg(4096);

void BM_GroupedQuantChannelwise(benchmark::State& state) {
  const MatrixF m = random_matrix(512, 64, 15);
  for (auto _ : state) {
    GroupQuantized g =
        quantize_grouped(m, BitWidth::kInt4, 64, QuantAxis::kChannel);
    benchmark::DoNotOptimize(g.packed.data());
  }
  state.SetItemsProcessed(state.iterations() * m.size());
}
BENCHMARK(BM_GroupedQuantChannelwise);

}  // namespace
