// Depth-propagation ablation (extension): how does attention approximation
// error compound through a stack of layers? The paper evaluates 32-layer
// models end to end but reports only task accuracy; this measures the
// hidden-state divergence directly, layer by layer.
#include <cstdio>

#include "attention/turbo_method.h"
#include "baselines/fp16_method.h"
#include "baselines/kivi.h"
#include "bench/task_methods.h"
#include "model/deep.h"
#include "model/profile.h"

int main() {
  using namespace turbo;
  using namespace turbo::model;

  ModelProfile profile = llama3_8b_profile();
  DeepConfig cfg;
  cfg.layers = 8;
  cfg.tokens = 128;

  struct Row {
    const char* label;
    KvAttentionFactory factory;
  };
  const Row rows[] = {
      {"Flash-FP16", make_fp16_factory({})},
      {"KIVI-4", bench::kivi_method(BitWidth::kInt4, profile.head_dim)
                     .factory},
      {"Turbo-4", bench::turbo_method(BitWidth::kInt4).factory},
      {"Turbo-2", bench::turbo_method(BitWidth::kInt2).factory},
  };

  std::printf("=== Depth ablation: hidden-state relative divergence vs "
              "exact, per layer (%s profile, %zu tokens) ===\n\n",
              profile.name.c_str(), cfg.tokens);
  std::printf("%12s |", "method");
  for (std::size_t l = 1; l <= cfg.layers; ++l) {
    std::printf("   L%zu    ", l);
  }
  std::printf("\n");

  for (const Row& row : rows) {
    const DepthDivergence d =
        measure_depth_divergence(profile, row.factory, cfg);
    std::printf("%12s |", row.label);
    for (double e : d.per_layer) {
      std::printf(" %8.4f", e);
    }
    std::printf("\n");
  }

  std::printf("\nExpected: FP16 divergence stays at rounding level; "
              "quantized methods grow for the first few layers and then "
              "*saturate* — the residual stream plus RMS norm are "
              "contractive, so per-layer attention error does not compound "
              "unboundedly. This is the mechanism that lets 4-bit KV "
              "caches stay near-lossless through 32-layer models (Table "
              "2), and why 2-bit (4x the per-layer error) still plateaus "
              "rather than diverging.\n");
  return 0;
}
