// Table 4 — isolating FlashQ and SAS: accuracy of each piece alone and
// combined, on the LLaMA3-8B profile / AQuA proxy.
#include <cstdio>

#include "bench/task_methods.h"
#include "model/profile.h"
#include "tasks/retrieval.h"

int main() {
  using namespace turbo;
  using namespace turbo::bench;
  using namespace turbo::tasks;

  const RetrievalConfig task = aqua_proxy(model::llama3_8b_profile());

  std::printf("=== Table 4 reproduction: FlashQ / SAS ablation "
              "(LLaMA3-8B profile, AQuA proxy) ===\n\n");
  std::printf("%-16s %-12s %-20s %s\n", "Model", "Dataset", "Method", "Acc");

  auto run = [&](const char* label, const KvAttentionFactory& factory) {
    const TaskResult r = run_retrieval(task, factory);
    std::printf("%-16s %-12s %-20s %5.1f\n", "LLaMA3-8B-proxy",
                "AQuA-proxy", label, 100.0 * r.accuracy);
  };

  run("FP16", make_fp16_factory(default_attention()));

  TurboMethodConfig flashq_only;
  flashq_only.attention = default_attention();
  flashq_only.use_sas = false;
  run("FlashQ-4bit", make_turbo_factory(flashq_only));

  TurboMethodConfig sas_only;
  sas_only.attention = default_attention();
  sas_only.use_flashq = false;
  run("SAS", make_turbo_factory(sas_only));

  TurboMethodConfig both;
  both.attention = default_attention();
  run("FlashQ-4bit + SAS", make_turbo_factory(both));

  std::printf("\nPaper shape: each piece alone costs ~1 point; combined "
              "~2-3 points below FP16 (50.8 / 49.6 / 50.1 / 48.0).\n");
  return 0;
}
