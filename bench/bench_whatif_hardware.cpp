// What-if hardware study (extension, not a paper figure): does
// TurboAttention's advantage persist across devices and tensor-parallel
// configurations? The paper evaluates a single A100; this sweep runs the
// same Figure-6-style decode comparison on an H100, a bandwidth-starved
// A100-PCIe, and 2/4-way tensor parallelism.
#include <cstdio>

#include "sim/parallel.h"

int main() {
  using namespace turbo::sim;

  const ModelGeometry geom = phi3_medium_geometry();

  std::printf("=== What-if: decode attention speedup of TurboAttention "
              "(3-bit mix) vs FlashAttention-FP16 ===\n");
  std::printf("%s, batch 8, context sweep; speedups of the full decode "
              "step (linear + attention)\n\n", geom.name.c_str());
  std::printf("%-16s %5s |", "device", "TP");
  for (std::size_t ctx : {2048u, 8192u, 32768u}) {
    std::printf("   ctx %6zu", ctx);
  }
  std::printf("\n");

  const DeviceSpec devices[] = {a100_sxm_80gb(), a100_pcie_40gb(),
                                h100_sxm_80gb()};
  for (const DeviceSpec& dev : devices) {
    for (std::size_t gpus : {1u, 2u, 4u}) {
      TensorParallelConfig tp;
      tp.gpus = gpus;
      std::printf("%-16s %5zu |", dev.name.c_str(), gpus);
      for (std::size_t ctx : {2048u, 8192u, 32768u}) {
        InferenceConfig fp16;
        fp16.method = AttnMethod::kFlashFp16;
        fp16.attention.kv_bits = 16;
        fp16.batch = 8;
        fp16.prompt = ctx;
        InferenceConfig turbo = fp16;
        turbo.method = AttnMethod::kTurbo;
        turbo.attention.kv_bits = 3;
        const double t_fp16 =
            decode_step_breakdown_tp(dev, geom, fp16, ctx, tp).total();
        const double t_turbo =
            decode_step_breakdown_tp(dev, geom, turbo, ctx, tp).total();
        std::printf("      %5.2fx", t_fp16 / t_turbo);
      }
      std::printf("\n");
    }
  }
  std::printf("\nExpected: the advantage grows with context (attention "
              "share grows) and on bandwidth-starved parts (PCIe), and "
              "shrinks as tensor parallelism dilutes per-GPU attention "
              "behind the all-reduces — but never inverts.\n");
  return 0;
}
