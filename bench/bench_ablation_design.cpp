// Design-choice ablations (DESIGN.md §5) — not a paper table, but the
// quantified justification for each of FlashQ's design decisions:
//
//  1. Integer vs float second-stage scales: what accuracy does the
//     integer decode path cost?
//  2. SAS sparsification threshold n_r: LUT size vs softmax error.
//  3. Universal clamped buffer scale vs per-token rescaling: what does
//     never-recompress cost on drifting token magnitudes?
//  4. Second-stage grouping axis: channel-wise vs token-wise on the
//     INT8 domain (the Figure 10 question, asked inside FlashQ).
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/stats.h"
#include "kvcache/decode_buffer.h"
#include "model/generator.h"
#include "quant/progressive.h"
#include "softmax/sas.h"
#include "softmax/softmax.h"

namespace {

using namespace turbo;
using namespace turbo::model;

void ablation_integer_scales() {
  std::printf("-- 1. Second-stage scales: integer (FlashQ) vs float "
              "(KIVI-style) --\n");
  std::printf("%-16s %4s  %14s  %14s  %10s\n", "profile", "bits",
              "int-scale RMSE", "float-scale RMSE", "premium");
  for (const ModelProfile& profile :
       {llama3_8b_profile(), phi3_mini_profile()}) {
    QkvGenerator gen(profile, 99);
    for (BitWidth bits : {BitWidth::kInt4, BitWidth::kInt2}) {
      double int_err = 0.0;
      double float_err = 0.0;
      for (std::size_t h = 0; h < profile.heads; ++h) {
        const HeadTensors t = gen.generate_head(h, 256);
        for (std::size_t begin = 0; begin + 64 <= t.k.rows(); begin += 64) {
          const MatrixF tile = t.k.block_rows(begin, 64);
          const Int8Tile q1 = quantize_tile_int8(tile);
          const ProgressiveBlock pb =
              progressive_compress(q1.q, q1.scale, bits);
          const FloatScaleBlock fb =
              float_scale_compress(q1.q, q1.scale, bits);
          int_err += rmse(tile, progressive_decompress_float(pb));
          float_err += rmse(tile, float_scale_decompress_float(fb));
        }
      }
      std::printf("%-16s %4d  %14.5f  %14.5f  %9.1f%%\n",
                  profile.name.c_str(), bit_count(bits), int_err,
                  float_err, 100.0 * (int_err / float_err - 1.0));
    }
  }
  std::printf("The integer-scale premium is the price of the INT->INT8 "
              "decode path (no FP dequantization kernel).\n\n");
}

void ablation_sas_threshold() {
  std::printf("-- 2. SAS threshold n_r: LUT size vs softmax error --\n");
  std::printf("%6s  %9s  %16s\n", "n_r", "LUT size", "softmax max err");
  Rng rng(7);
  MatrixF scores(64, 256);
  rng.fill_normal(scores.flat(), 0.0, 3.0);
  const MatrixF exact = softmax_rows(scores);
  for (int n_r : {-3, -4, -6, -8, -10, -14}) {
    const Sas sas(SasConfig{.threshold = n_r});
    const MatrixF approx = sas.softmax(scores);
    std::printf("%6d  %9zu  %16.2e\n", n_r, sas.lut().size(),
                max_abs_error(approx, exact));
  }
  std::printf("Sparsification error shrinks ~e^{n_r} until the POLY/FP16 "
              "floor (~1e-4) near n_r = -14. The paper's n_r = -6 keeps "
              "the LUT at 8 entries; Table 4 shows the residual softmax "
              "error is already below task-level resolution there.\n\n");
}

void ablation_buffer_scale() {
  std::printf("-- 3. Decode buffer: universal clamped scale vs per-token "
              "rescaling --\n");
  std::printf("%14s  %18s  %18s  %8s\n", "drift/token", "universal RMSE",
              "per-token RMSE", "clamped");
  const std::size_t dim = 64;
  const std::size_t tokens = 64;
  for (double drift : {0.0, 0.01, 0.03, 0.1}) {
    Rng rng(11);
    DecodeBuffer buf(tokens, dim);
    buf.seed_scale(4.0f);  // from prefill statistics
    double uni_sq = 0.0;
    double per_sq = 0.0;
    std::size_t n = 0;
    for (std::size_t t = 0; t < tokens; ++t) {
      std::vector<float> v(dim);
      const double scale_up = 1.0 + drift * static_cast<double>(t);
      rng.fill_normal(v, 0.0, scale_up);
      buf.push(v);
      // Per-token alternative: fresh symmetric scale for this token.
      const float s = symmetric_scale_int8(v);
      std::vector<std::int8_t> q(dim);
      quantize_symmetric_int8(v, s, q);
      for (std::size_t c = 0; c < dim; ++c) {
        const double u =
            static_cast<double>(buf.tokens()(t, c)) * buf.scale() - v[c];
        const double p = static_cast<double>(q[c]) * s - v[c];
        uni_sq += u * u;
        per_sq += p * p;
        ++n;
      }
    }
    std::printf("%14.2f  %18.5f  %18.5f  %7zu\n", drift,
                std::sqrt(uni_sq / n), std::sqrt(per_sq / n),
                buf.clamped_token_count());
  }
  std::printf("With stationary magnitudes the universal scale costs ~1.5x "
              "RMSE vs per-token rescaling (a coarser but shared grid); "
              "under magnitude drift it degrades through clamping — the "
              "price section 3.3 accepts for never recompressing and for "
              "keeping the buffer INT8-attendable.\n\n");
}

void ablation_grouping_axis() {
  std::printf("-- 4. Second-stage axis on the INT8 domain: channel vs "
              "token --\n");
  std::printf("%-16s %4s  %12s  %12s\n", "profile", "bits", "channelwise",
              "tokenwise");
  for (const ModelProfile& profile :
       {llama3_8b_profile(), phi3_mini_profile()}) {
    QkvGenerator gen(profile, 31);
    for (BitWidth bits : {BitWidth::kInt4, BitWidth::kInt2}) {
      double ch_err = 0.0;
      double tok_err = 0.0;
      for (std::size_t h = 0; h < profile.heads; ++h) {
        const HeadTensors t = gen.generate_head(h, 256);
        for (std::size_t begin = 0; begin + 64 <= t.v.rows(); begin += 64) {
          const MatrixF tile = t.v.block_rows(begin, 64);
          const Int8Tile q1 = quantize_tile_int8(tile);
          // Channelwise: the shipped implementation.
          const ProgressiveBlock ch =
              progressive_compress(q1.q, q1.scale, bits);
          ch_err += rmse(tile, progressive_decompress_float(ch));
          // Tokenwise: transpose the tile so rows become channels.
          MatrixI8 q1t(q1.q.cols(), q1.q.rows());
          for (std::size_t r = 0; r < q1.q.rows(); ++r) {
            for (std::size_t c = 0; c < q1.q.cols(); ++c) {
              q1t(c, r) = q1.q(r, c);
            }
          }
          const ProgressiveBlock tok =
              progressive_compress(q1t, q1.scale, bits);
          const MatrixF back_t = progressive_decompress_float(tok);
          MatrixF back(tile.rows(), tile.cols());
          for (std::size_t r = 0; r < tile.rows(); ++r) {
            for (std::size_t c = 0; c < tile.cols(); ++c) {
              back(r, c) = back_t(c, r);
            }
          }
          tok_err += rmse(tile, back);
        }
      }
      std::printf("%-16s %4d  %12.5f  %12.5f\n", profile.name.c_str(),
                  bit_count(bits), ch_err, tok_err);
    }
  }
  std::printf("Channel-wise grouping wins inside the INT8 domain too — "
              "Eq. 10's choice.\n");
}

}  // namespace

int main() {
  std::printf("=== Design-choice ablations (DESIGN.md §5) ===\n\n");
  ablation_integer_scales();
  ablation_sas_threshold();
  ablation_buffer_scale();
  ablation_grouping_axis();
  return 0;
}
