// Figure 10 — quantization error of channel-wise vs token-wise grouped
// quantization on the value cache.
//
// Two views: raw RMSE (dominated by the outlier channels' absolute errors
// under every scheme) and channel-normalized error (per-channel RMSE over
// channel stddev) — the latter exposes the mechanism: token-wise groups
// inherit the row's outlier-dominated step size, so the *normal* channels
// are quantized far too coarsely. FlashQ's two-stage pipeline is included
// for context.
#include <cstdio>

#include "model/generator.h"
#include "quant/error.h"

int main() {
  using namespace turbo;
  using namespace turbo::model;

  std::printf("=== Figure 10 reproduction: group-quantization error, "
              "channelwise vs tokenwise (group 64) ===\n");
  std::printf("simulated 512-token value caches, averaged over heads\n\n");

  for (const char* metric : {"raw RMSE", "channel-normalized error"}) {
    const bool normalized = metric[0] == 'c';
    std::printf("-- %s --\n", metric);
    std::printf("%-16s %4s  %12s  %12s  %12s\n", "profile", "bits",
                "channelwise", "tokenwise", "FlashQ(2stage)");
    for (const ModelProfile& profile :
         {llama3_8b_profile(), phi3_mini_profile()}) {
      QkvGenerator gen(profile, 777);
      for (BitWidth bits : {BitWidth::kInt4, BitWidth::kInt2}) {
        double ch = 0.0;
        double tok = 0.0;
        double prog = 0.0;
        for (std::size_t h = 0; h < profile.heads; ++h) {
          const HeadTensors t = gen.generate_head(h, 512);
          if (normalized) {
            ch += grouped_quant_normalized_error(t.v, bits, 64,
                                                 QuantAxis::kChannel);
            tok += grouped_quant_normalized_error(t.v, bits, 64,
                                                  QuantAxis::kToken);
            prog += progressive_quant_normalized_error(t.v, bits, 64);
          } else {
            ch += grouped_quant_rmse(t.v, bits, 64, QuantAxis::kChannel);
            tok += grouped_quant_rmse(t.v, bits, 64, QuantAxis::kToken);
            prog += progressive_quant_rmse(t.v, bits, 64);
          }
        }
        const double n = static_cast<double>(profile.heads);
        std::printf("%-16s %4d  %12.4f  %12.4f  %12.4f\n",
                    profile.name.c_str(), bit_count(bits), ch / n, tok / n,
                    prog / n);
      }
    }
    std::printf("\n");
  }
  std::printf("Expected: in the normalized view channelwise << tokenwise, "
              "with the widest gap on Phi-3 (channel-outlier-heavy "
              "values); FlashQ tracks the float channelwise quantizer "
              "while keeping an integer-arithmetic decode path.\n");
  return 0;
}
