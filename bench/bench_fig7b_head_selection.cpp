// Figure 7b — head-wise mixed-precision selection ablation on the
// LLaMA3-8B profile / AQuA proxy: accuracy as the number of 2-bit heads
// grows, under the paper's priority metric vs entropy / min-max /
// variation baselines.
#include <cstdio>

#include "bench/task_methods.h"
#include "model/profile.h"
#include "tasks/retrieval.h"

int main() {
  using namespace turbo;
  using namespace turbo::bench;
  using namespace turbo::tasks;

  RetrievalConfig task = aqua_proxy(model::llama3_8b_profile());
  const std::size_t n_heads = task.profile.heads;

  const HeadSelectionMetric metrics[] = {
      HeadSelectionMetric::kPriority,
      HeadSelectionMetric::kEntropy,
      HeadSelectionMetric::kMinMax,
      HeadSelectionMetric::kVariation,
  };

  std::printf("=== Figure 7b reproduction: accuracy vs #2-bit heads "
              "(LLaMA3-8B profile, AQuA proxy, %zu heads) ===\n\n",
              n_heads);
  std::printf("%10s |", "2-bit");
  for (const auto m : metrics) {
    std::printf(" %10s", head_selection_metric_name(m));
  }
  std::printf("\n");

  for (std::size_t n2 = 0; n2 <= n_heads; n2 += 2) {
    std::printf("%10zu |", n2);
    for (const auto metric : metrics) {
      const NamedFactory f = turbo_mixed_method(task, n2, metric);
      const TaskResult r = run_retrieval(task, f.factory);
      std::printf("      %5.1f", 100.0 * r.accuracy);
    }
    std::printf("\n");
  }

  std::printf("\nPaper shape: all metrics equal at 0 2-bit heads; the "
              "priority metric degrades slowest as more heads drop to "
              "2-bit.\n");
  return 0;
}
