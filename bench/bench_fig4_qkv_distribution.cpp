// Figure 4 — Q/K/V channel min-max distributions of Phi3-mini and
// LLaMA3-8B: certain heads carry large-magnitude channels in Q/K; Phi-3's
// value cache shows pronounced channel outliers.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "model/generator.h"

namespace {

using namespace turbo;
using namespace turbo::model;

void report_tensor(const char* label, const MatrixF& m) {
  const auto mm = channel_min_max(m);
  std::vector<float> gaps;
  gaps.reserve(mm.size());
  for (const auto& c : mm) gaps.push_back(c.gap());
  std::printf("    %-6s channel-gap p50=%6.2f  p95=%6.2f  max=%6.2f\n",
              label, percentile(gaps, 50), percentile(gaps, 95),
              percentile(gaps, 100));
}

void profile_report(const ModelProfile& profile) {
  std::printf("\n-- %s (%zu heads x %zu dims, 512 tokens) --\n",
              profile.name.c_str(), profile.heads, profile.head_dim);
  QkvGenerator gen(profile, /*seed=*/42);
  for (std::size_t h = 0; h < profile.heads; ++h) {
    const HeadTensors t = gen.generate_head(h, 512);
    std::printf("  head %zu\n", h);
    report_tensor("query", t.q);
    report_tensor("key", t.k);
    report_tensor("value", t.v);
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 4 reproduction: Q/K/V channel min-max "
              "distributions (synthetic profiles) ===\n");
  profile_report(phi3_mini_profile());
  profile_report(llama3_8b_profile());
  std::printf("\nExpected structure: later heads carry heavier channel "
              "outliers in Q/K;\nPhi-3's value channels show far larger "
              "gaps than LLaMA-3's.\n");
  return 0;
}
