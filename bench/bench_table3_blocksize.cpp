// Table 3 — TurboAttention accuracy across FlashAttention block sizes
// (Br, Bc) on the Phi3-mini profile / GSM8k proxy. The paper's finding:
// accuracy is flat (78.0-78.3) across block configurations.
//
// Alongside task accuracy we report the attention-output fidelity
// (relative decode error vs FP32 exact) — the quantity block size actually
// moves, monotonically and only slightly: smaller Bc means finer
// quantization statistics.
#include <cstdio>

#include "bench/task_methods.h"
#include "model/generator.h"
#include "model/pipeline.h"
#include "model/profile.h"
#include "tasks/retrieval.h"

int main() {
  using namespace turbo;
  using namespace turbo::bench;
  using namespace turbo::tasks;

  RetrievalConfig task = gsm8k_proxy(model::phi3_mini_profile());
  // Run in the robust region (the paper's GSM8k rows sit near the model's
  // ceiling): block size must not move accuracy there.
  task.negative_similarity -= 0.02;
  task.n_cases = 48;

  model::QkvGenerator gen(model::phi3_mini_profile(), 5);
  model::PipelineConfig fidelity_cfg;
  fidelity_cfg.prefill_tokens = 224;
  fidelity_cfg.decode_steps = 48;

  std::printf("=== Table 3 reproduction: TurboAttention (4-bit) vs block "
              "size, Phi3-mini profile / GSM8k proxy ===\n\n");
  std::printf("%-18s %-12s %6s  %18s\n", "Block size(Br,Bc)", "Dataset",
              "Acc", "decode rel. err");

  const std::pair<std::size_t, std::size_t> blocks[] = {
      {32, 32}, {32, 64}, {64, 32}, {64, 64},
      {64, 128}, {128, 64}, {128, 128}};

  double lo = 101.0;
  double hi = -1.0;
  for (const auto& [br, bc] : blocks) {
    TurboMethodConfig cfg;
    cfg.attention.block_rows = br;
    cfg.attention.block_cols = bc;
    cfg.kv_bits = BitWidth::kInt4;
    cfg.buffer_capacity = bc;  // buffer flushes align with cache blocks
    const TaskResult r = run_retrieval(task, make_turbo_factory(cfg));
    const model::MethodFidelity f =
        measure_fidelity(gen, make_turbo_factory(cfg), fidelity_cfg);
    const double acc = 100.0 * r.accuracy;
    lo = std::min(lo, acc);
    hi = std::max(hi, acc);
    std::printf("(%3zu,%3zu)          %-12s %5.1f  %18.4f\n", br, bc,
                "GSM8K-proxy", acc, f.decode_rel_err);
  }
  std::printf("\naccuracy spread (max - min) = %.1f points at a "
              "%.1f-point/case quantum; fidelity varies monotonically and "
              "mildly with Bc (finer blocks, finer statistics). Paper: "
              "~0.5-point spread over 1.3k samples.\n",
              hi - lo, 100.0 / static_cast<double>(task.n_cases));
  return 0;
}
