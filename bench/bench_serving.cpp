// Serving-level extension experiment (not a paper figure): the paper's
// kernel-level wins, run through a continuous-batching serving simulator
// under Poisson load. Shows how attention latency + KV footprint translate
// into fleet metrics: sustained throughput, time-to-first-token tails, and
// the load each method sustains before queueing collapse.
#include <cstdio>

#include "fleet/metrics.h"
#include "fleet/router.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/trace.h"

int main() {
  using namespace turbo::serving;
  using turbo::sim::AttnMethod;

  struct MethodRow {
    AttnMethod method;
    double bits;
    const char* label;
  };
  const MethodRow methods[] = {
      {AttnMethod::kFlashFp16, 16.0, "Flash-FP16"},
      {AttnMethod::kKiviFlash, 4.0, "KIVI-4"},
      {AttnMethod::kTurbo, 4.0, "Turbo-4"},
      {AttnMethod::kTurbo, 3.0, "Turbo-2/4mix"},
  };

  std::printf("=== Serving simulation: Phi3-medium on A100-80GB, "
              "continuous batching, Poisson arrivals ===\n");
  std::printf("trace: 60 s, lognormal prompts (median ~490 tok) and "
              "generations (median ~120 tok)\n\n");

  for (double rate : {2.0, 6.0, 12.0}) {
    TraceConfig t;
    t.arrival_rate = rate;
    t.duration_s = 60.0;
    const auto trace = generate_trace(t);
    std::printf("-- arrival rate %.0f req/s (%zu requests) --\n", rate,
                trace.size());
    std::printf("%14s  %9s  %9s  %9s  %9s  %9s  %6s\n", "method", "tok/s",
                "TTFT p50", "TTFT p99", "TPOT p50", "e2e p99", "batch");
    for (const MethodRow& m : methods) {
      EngineConfig cfg;
      cfg.device = turbo::sim::a100_sxm_80gb();
      cfg.geometry = turbo::sim::phi3_medium_geometry();
      cfg.method = m.method;
      cfg.attention.kv_bits = m.bits;
      const ServingMetrics s = summarize(run_engine(cfg, trace));
      std::printf("%14s  %9.0f  %8.2fs  %8.2fs  %8.0fms  %8.1fs  %6zu\n",
                  m.label, s.output_tokens_per_s, s.ttft_p50, s.ttft_p99,
                  s.tpot_p50 * 1e3, s.e2e_p99, s.peak_batch);
    }
    std::printf("\n");
  }
  std::printf("Expected: at low load all methods are similar; as load "
              "grows, FP16 hits its KV memory wall first — queueing "
              "inflates its TTFT tail while the compressed methods keep "
              "admitting. KIVI pays its dequant pass in TPOT.\n");

  // --- Overload + preemption: swap-out vs recompute under pressure ---
  // A deliberately small KV pool (Phi3-mini on a 40 GB PCIe card with low
  // headroom) so decode growth regularly exhausts pages and the scheduler
  // must preempt. Compares eviction policies and shows the fault-injection
  // counters under a mildly hostile plan.
  std::printf("\n=== Overload: Phi3-mini on A100-PCIe-40GB, headroom 0.55, "
              "Turbo-3 ===\n");
  std::printf("fault plan: 2%% page-alloc failures, 5%% swap corruption, "
              "5%% 8x PCIe latency spikes (seed 7)\n\n");
  for (double rate : {12.0, 24.0, 48.0}) {
    TraceConfig t;
    t.arrival_rate = rate;
    t.duration_s = 30.0;
    const auto trace = generate_trace(t);
    std::printf("-- arrival rate %.0f req/s (%zu requests) --\n", rate,
                trace.size());
    std::printf("%10s  %8s  %9s  %7s  %7s  %8s  %7s  %6s\n", "policy",
                "tok/s", "e2e p99", "preempt", "swapins", "recover",
                "stall", "maxpre");
    for (const char* policy : {"swap", "recompute"}) {
      EngineConfig cfg;
      cfg.device = turbo::sim::a100_pcie_40gb();
      cfg.geometry = turbo::sim::phi3_mini_geometry();
      cfg.method = AttnMethod::kTurbo;
      cfg.attention.kv_bits = 3.0;
      cfg.memory_headroom = 0.55;
      cfg.preempt_mode = policy[0] == 's' ? PreemptMode::kSwap
                                          : PreemptMode::kRecompute;
      cfg.faults.seed = 7;
      cfg.faults.page_alloc_failure_prob = 0.02;
      cfg.faults.stream_corruption_prob = 0.05;
      cfg.faults.swap_spike_prob = 0.05;
      const ServingMetrics s = summarize(run_engine(cfg, trace));
      std::printf("%10s  %8.0f  %8.1fs  %7zu  %7zu  %7zu  %6.2fs  %6zu\n",
                  policy, s.output_tokens_per_s, s.e2e_p99, s.preemptions,
                  s.swap_ins, s.recoveries, s.swap_stall_s,
                  s.max_preemptions_single_request);
    }
    std::printf("\n");
  }
  std::printf("Expected: every request completes or is explicitly rejected "
              "despite injected faults. Swap preserves decoded context at "
              "PCIe cost; recompute re-pays prefill instead. Corrupted "
              "swap-ins are caught by checksum and recovered by "
              "recompute.\n");

  // --- Chunked prefill: scheduler quantum sweep ----------------------------
  // Long prompts mixed into a decode-heavy stream. Monolithic prefill
  // (chunk 0) head-of-line blocks every in-flight generation for a whole
  // prompt; smaller chunks bound each inter-token gap by one chunk at the
  // price of re-reading the cached prefix per chunk (visible as a slightly
  // longer makespan / lower tok/s at tiny chunks).
  std::printf("\n=== Chunked prefill sweep: Phi3-medium on A100-80GB, "
              "Turbo-4 ===\n");
  std::printf("trace: 6 req/s for 40 s, long prompts (median ~1100 tok, "
              "up to 16k) over short generations (median ~55 tok)\n\n");
  {
    TraceConfig t;
    t.arrival_rate = 6.0;
    t.duration_s = 40.0;
    t.prompt_log_mean = 7.0;  // median ~1100 tokens; heavy prefill tail
    t.prompt_log_std = 1.0;
    t.gen_log_mean = 4.0;     // median ~55 tokens; decode-bound stream
    t.gen_log_std = 0.5;
    t.seed = 13;
    const auto trace = generate_trace(t);
    std::printf("%11s  %8s  %9s  %9s  %9s  %9s  %9s\n", "chunk (tok)",
                "tok/s", "TTFT p50", "TTFT p99", "TPOT p50", "TPOT p99",
                "e2e p99");
    for (const std::size_t chunk : {std::size_t{0}, std::size_t{256},
                                    std::size_t{512}, std::size_t{1024},
                                    std::size_t{2048}}) {
      EngineConfig cfg;
      cfg.device = turbo::sim::a100_sxm_80gb();
      cfg.geometry = turbo::sim::phi3_medium_geometry();
      cfg.method = AttnMethod::kTurbo;
      cfg.attention.kv_bits = 4.0;
      cfg.prefill_chunk_tokens = chunk;
      const ServingMetrics s = summarize(run_engine(cfg, trace));
      char label[16];
      std::snprintf(label, sizeof(label), "%zu", chunk);
      std::printf("%11s  %8.0f  %8.2fs  %8.2fs  %8.0fms  %8.0fms  %8.1fs\n",
                  chunk == 0 ? "monolithic" : label, s.output_tokens_per_s,
                  s.ttft_p50, s.ttft_p99, s.tpot_p50 * 1e3, s.tpot_p99 * 1e3,
                  s.e2e_p99);
    }
  }
  std::printf("\nExpected: TPOT p99 shrinks as the chunk shrinks (inter-"
              "token gaps are bounded by one chunk instead of one prompt) "
              "and e2e p99 improves with it; TTFT of queued requests rises "
              "because prefill work is spread across iterations, and tiny "
              "chunks pay for re-reading the cached prefix each chunk. "
              "512 is the shipped default.\n");

  // --- Overload control: FIFO vs class-aware vs + degradation ladder ---
  // A mixed-class trace pushed well past the sustainable rate on a small
  // KV pool. FIFO treats every request alike, so interactive requests
  // queue behind batch work and blow their TTFT deadline; class-aware
  // scheduling admits and protects interactive first; the degradation
  // ladder additionally downshifts KV precision under pressure (packing
  // more tokens per page) and sheds batch arrivals, trading batch
  // completions and KV fidelity for fewer preemptions and timeouts.
  std::printf("\n=== Overload control: Phi3-mini on A100-PCIe-40GB, "
              "headroom 0.35, Turbo-4 ===\n");
  std::printf("mix: 30%% interactive (TTFT SLO 2.5 s), 50%% standard "
              "(TTFT SLO 20 s), 20%% batch (no SLO)\n\n");
  {
    TraceConfig t;
    t.arrival_rate = 24.0;
    t.duration_s = 20.0;
    t.prompt_log_mean = 5.5;
    t.prompt_log_std = 0.5;
    t.gen_log_mean = 5.0;
    t.gen_log_std = 0.5;
    t.seed = 17;
    t.class_mix = {0.3, 0.5, 0.2};
    t.ttft_deadline_s = {2.5, 20.0, 0.0};
    const auto trace = generate_trace(t);
    std::printf("trace: %.0f req/s for %.0f s (%zu requests)\n\n",
                t.arrival_rate, t.duration_s, trace.size());
    std::printf("%16s  %8s  %12s  %12s  %7s  %7s  %5s  %6s\n", "policy",
                "tok/s", "inter. p99", "inter. SLO", "preempt", "timeout",
                "shed", "minbit");
    struct PolicyRow {
      const char* label;
      SchedPolicy policy;
      bool degrade;
    };
    const PolicyRow rows[] = {
        {"fifo", SchedPolicy::kFifo, false},
        {"class-aware", SchedPolicy::kClassAware, false},
        {"class+degrade", SchedPolicy::kClassAware, true},
    };
    for (const PolicyRow& row : rows) {
      EngineConfig cfg;
      cfg.device = turbo::sim::a100_pcie_40gb();
      cfg.geometry = turbo::sim::phi3_mini_geometry();
      cfg.method = AttnMethod::kTurbo;
      cfg.attention.kv_bits = 4.0;
      cfg.memory_headroom = 0.35;
      cfg.policy = row.policy;
      cfg.degrade.enabled = row.degrade;
      const ServingMetrics s = summarize(run_engine(cfg, trace));
      const ClassBreakdown& inter = s.by_class[0];
      std::printf("%16s  %8.0f  %11.2fs  %11.1f%%  %7zu  %7zu  %5zu  %6.1f\n",
                  row.label, s.output_tokens_per_s, inter.ttft_p99,
                  100.0 * inter.ttft_attainment, s.preemptions, s.timed_out,
                  s.shed, s.min_kv_bits);
    }
  }
  std::printf("\nExpected: FIFO misses the interactive TTFT SLO (queueing "
              "behind batch prefills); class-aware keeps interactive p99 "
              "inside the deadline at the same load; enabling the ladder "
              "further cuts preemptions and timeouts by downshifting KV "
              "precision (min KV bits drops toward 2) and shedding batch "
              "arrivals at the door.\n");

  // --- Tiered swap: host DRAM + disk under pressure and under failure ---
  // The same overload shape as the preemption study, but with a host
  // swap tier too small for the working set, so cold streams demote to a
  // slow disk tier; a third run kills the disk mid-run to show the
  // failover ladder (host hit -> retry/blacklist -> recompute) absorbing
  // the loss. Every request still terminates; the cost shows up as
  // recompute fallbacks and retry stall, never as a hang.
  std::printf("\n=== Tiered swap: Phi3-mini on A100-PCIe-40GB, headroom "
              "0.25, Turbo-3 ===\n");
  std::printf("tiers: host DRAM (PCIe) over disk; host capped at 64 MB in "
              "the tiered runs; disk outage at t=2 s in the failure run\n\n");
  {
    TraceConfig t;
    t.arrival_rate = 24.0;
    t.duration_s = 15.0;
    t.prompt_log_mean = 5.5;
    t.prompt_log_std = 0.5;
    t.gen_log_mean = 5.5;
    t.gen_log_std = 0.5;
    t.seed = 11;
    const auto trace = generate_trace(t);
    std::printf("trace: %.0f req/s for %.0f s (%zu requests)\n\n",
                t.arrival_rate, t.duration_s, trace.size());
    std::printf("%12s  %8s  %9s  %7s  %7s  %7s  %7s  %9s\n", "config",
                "tok/s", "e2e p99", "demote", "failov", "blackl",
                "recomp", "stall");
    struct TierRow {
      const char* label;
      std::size_t host_cap;
      bool disk_outage;
    };
    const TierRow rows[] = {
        {"host-only", 0, false},
        {"host+disk", 64ull << 20, false},
        {"disk-dead", 64ull << 20, true},
    };
    for (const TierRow& row : rows) {
      EngineConfig cfg;
      cfg.device = turbo::sim::a100_pcie_40gb();
      cfg.geometry = turbo::sim::phi3_mini_geometry();
      cfg.method = AttnMethod::kTurbo;
      cfg.attention.kv_bits = 3.0;
      cfg.memory_headroom = 0.25;
      cfg.swap.host_capacity_bytes = row.host_cap;
      cfg.faults.seed = 7;
      cfg.faults.page_alloc_failure_prob = 0.05;
      cfg.faults.swap_spike_prob = 0.05;
      if (row.disk_outage) {
        cfg.faults.tiers[1].outage_start_s = 2.0;
        cfg.faults.tiers[1].outage_end_s = 1e9;
      }
      const ServingMetrics s = summarize(run_engine(cfg, trace));
      std::printf("%12s  %8.0f  %8.1fs  %7zu  %7zu  %7zu  %7zu  %8.2fs\n",
                  row.label, s.output_tokens_per_s, s.e2e_p99,
                  s.tier_demotions, s.tier_failovers, s.tier_blacklists,
                  s.swap_unavailable_recomputes + s.swap_overflow_recomputes,
                  s.tier_retry_stall_s);
    }
  }
  std::printf("\nExpected: capping host DRAM pushes cold streams to disk "
              "(demotions appear; stalls grow with disk reads); killing the "
              "disk converts parked streams into recompute fallbacks after "
              "bounded retries — the health tracker blacklists the dead "
              "tier so later stores stop paying the probe, and every "
              "request still completes or is explicitly rejected.\n");

  // --- Fleet: replicated engines behind a health-checked router ---
  // The overload mix scaled to fleet rate: four replicas absorb ~4x the
  // single-engine load. The outage rows kill replica 1 for a six-second
  // window mid-run; the router stops admitting to it, drains its
  // in-flight work, and migrates live KV streams over the modeled
  // interconnect (corruption-checked; recompute on failure). Routing
  // policy decides who inherits the displaced load — class-aware keeps
  // interactive traffic on the least-loaded survivors.
  std::printf("\n=== Fleet: 4x Phi3-mini replicas on A100-PCIe-40GB, "
              "headroom 0.35, Turbo-4 ===\n");
  std::printf("outage rows: replica 1 down over [2 s, 8 s); KV migrates "
              "over a 64 GiB/s interconnect, failover budget 2\n\n");
  {
    TraceConfig t;
    t.arrival_rate = 88.0;
    t.duration_s = 20.0;
    t.prompt_log_mean = 5.5;
    t.prompt_log_std = 0.5;
    t.gen_log_mean = 5.0;
    t.gen_log_std = 0.5;
    t.seed = 17;
    t.class_mix = {0.3, 0.5, 0.2};
    t.ttft_deadline_s = {2.5, 20.0, 0.0};
    const auto trace = generate_trace(t);
    std::printf("trace: %.0f req/s for %.0f s (%zu requests)\n\n",
                t.arrival_rate, t.duration_s, trace.size());
    std::printf("%18s  %8s  %12s  %12s  %7s  %7s  %7s  %7s\n", "config",
                "tok/s", "inter. p99", "inter. SLO", "outage", "drain",
                "migrate", "recomp");
    struct FleetRow {
      const char* label;
      std::size_t replicas;
      turbo::fleet::RoutePolicy route;
      bool outage;
    };
    const FleetRow rows[] = {
        {"1-replica", 1, turbo::fleet::RoutePolicy::kClassAware, false},
        {"4-rep rr", 4, turbo::fleet::RoutePolicy::kRoundRobin, false},
        {"4-rep class", 4, turbo::fleet::RoutePolicy::kClassAware, false},
        {"4-rep rr+kill", 4, turbo::fleet::RoutePolicy::kRoundRobin, true},
        {"4-rep lop+kill", 4,
         turbo::fleet::RoutePolicy::kLeastOutstandingPages, true},
        {"4-rep class+kill", 4, turbo::fleet::RoutePolicy::kClassAware,
         true},
    };
    for (const FleetRow& row : rows) {
      turbo::fleet::FleetConfig cfg;
      cfg.engine.device = turbo::sim::a100_pcie_40gb();
      cfg.engine.geometry = turbo::sim::phi3_mini_geometry();
      cfg.engine.method = AttnMethod::kTurbo;
      cfg.engine.attention.kv_bits = 4.0;
      cfg.engine.memory_headroom = 0.35;
      cfg.engine.policy = SchedPolicy::kClassAware;
      cfg.replicas = row.replicas;
      cfg.route = row.route;
      if (row.outage) {
        cfg.engine.faults.replicas[1].add_outage(2.0, 8.0);
      }
      const turbo::fleet::FleetMetrics m =
          turbo::fleet::summarize_fleet(turbo::fleet::run_fleet(cfg, trace));
      const ClassBreakdown& inter = m.fleet.by_class[0];
      std::printf("%18s  %8.0f  %11.2fs  %11.1f%%  %7zu  %7zu  %7zu  %7zu\n",
                  row.label, m.fleet.output_tokens_per_s, inter.ttft_p99,
                  100.0 * inter.ttft_attainment, m.replica_outages,
                  m.failover_drains, m.migrations, m.migration_recomputes);
    }
  }
  std::printf("\nExpected: one replica cannot carry fleet-rate load (TTFT "
              "collapses); four replicas restore the single-engine SLO "
              "picture at 4x the arrival rate. Killing a replica mid-run "
              "drains and migrates its streams instead of losing them: "
              "round-robin keeps routing classes blindly and gives back "
              "the most interactive attainment, while least-pages and "
              "class-aware steer the displaced load to the emptiest "
              "survivors and hold interactive TTFT-SLO attainment within "
              "a few points (target: <= 5) of the no-outage run.\n");

  // --- Prefix sharing: session workloads over the radix KV index ---------
  // A session mix dominated by one ~1024-token system prompt (90% of
  // sessions carry it, 4 turns each, a third agentic), run twice over the
  // *same* trace: once with token ids stripped (every turn re-prefills its
  // whole history from scratch) and once with ids intact (the radix index
  // attaches resident prefix pages at admission, so only the novel suffix
  // is charged and prefilled).
  std::printf("\n=== Prefix sharing: Phi3-mini on A100-PCIe-40GB, headroom "
              "0.35, Turbo-4, interactive TTFT SLO 2.5 s ===\n");
  std::printf("sessions: 1024-token shared system prompt (90%% of "
              "sessions), 4 turns, 33%% agentic tool loops\n\n");
  {
    TraceConfig t;
    t.arrival_rate = 3.0;
    t.duration_s = 30.0;
    t.prompt_log_mean = 5.5;
    t.prompt_log_std = 0.5;
    t.gen_log_mean = 4.5;
    t.gen_log_std = 0.5;
    t.seed = 23;
    t.class_mix = {1.0, 0.0, 0.0};
    t.ttft_deadline_s = {2.5, 0.0, 0.0};
    t.shared_prefix_tokens = 1024;
    t.shared_prefix_fraction = 0.9;
    t.session_turns = 4;
    t.session_gap_s = 2.0;
    t.agentic_fraction = 0.33;
    const auto trace = generate_trace(t);
    auto stripped = trace;  // identical load, no ids => no sharing
    for (Request& r : stripped) r.prompt_ids.clear();
    std::printf("trace: %.0f sessions/s for %.0f s (%zu requests "
                "counting follow-up turns)\n\n",
                t.arrival_rate, t.duration_s, trace.size());
    std::printf("%12s  %8s  %12s  %12s  %10s  %9s  %9s\n", "config",
                "tok/s", "inter. SLO", "prefilled", "peak pages", "hits",
                "attached");
    struct ShareRow {
      const char* label;
      const std::vector<Request>* trace;
    };
    const ShareRow rows[] = {
        {"no-sharing", &stripped},
        {"radix-share", &trace},
    };
    for (const ShareRow& row : rows) {
      EngineConfig cfg;
      cfg.device = turbo::sim::a100_pcie_40gb();
      cfg.geometry = turbo::sim::phi3_mini_geometry();
      cfg.method = AttnMethod::kTurbo;
      cfg.attention.kv_bits = 4.0;
      cfg.memory_headroom = 0.35;
      const ServingMetrics s = summarize(run_engine(cfg, *row.trace));
      const ClassBreakdown& inter = s.by_class[0];
      std::printf("%12s  %8.0f  %11.1f%%  %9zu tok  %10zu  %9zu  %9zu\n",
                  row.label, s.output_tokens_per_s,
                  100.0 * inter.ttft_attainment, s.prefilled_tokens,
                  s.peak_referenced_pages, s.prefix_hit_requests,
                  s.prefix_pages_attached);
    }
  }
  std::printf("\nExpected: with sharing on, every follow-up turn and every "
              "shared-system-prompt admission attaches its history from "
              "the radix index, so total prefilled tokens drop by >= 50%% "
              "and peak referenced pages fall below the no-sharing run, "
              "at equal or better interactive TTFT-SLO attainment on the "
              "identical request stream.\n");

  // --- Disaggregation: prefill/decode role split at equal replica count --
  // Long-prompt session traffic is the workload disaggregation exists
  // for: in a symmetric fleet every replica interleaves decode iterations
  // between prefill chunks, so a long prompt's TTFT pays for the resident
  // batch. Splitting roles gives prompts a decode-free prefill lane and
  // streams the finished KV to the decode pool over the interconnect.
  // The outage rows kill prefill replica 0 for a six-second window: its
  // in-flight prompts re-route to the sibling prefill replica (2p2d+kill,
  // 3p1d+kill) — a dead role costs latency, never a request.
  std::printf("\n=== Disaggregation: 4 Phi3-mini replicas on "
              "A100-PCIe-40GB, headroom 0.35, Turbo-4, interactive TTFT "
              "SLO 2.5 s ===\n");
  std::printf("long-prompt sessions: ~900-token prompts, 1024-token shared "
              "system prefix, 3 turns; outage rows: prefill replica 0 "
              "down over [2 s, 8 s)\n\n");
  {
    TraceConfig t;
    t.arrival_rate = 16.0;
    t.duration_s = 20.0;
    t.prompt_log_mean = 6.8;
    t.prompt_log_std = 0.4;
    t.gen_log_mean = 4.5;
    t.gen_log_std = 0.5;
    t.seed = 31;
    t.class_mix = {1.0, 0.0, 0.0};
    t.ttft_deadline_s = {2.5, 0.0, 0.0};
    t.shared_prefix_tokens = 1024;
    t.shared_prefix_fraction = 0.9;
    t.session_turns = 3;
    t.session_gap_s = 2.0;
    const auto trace = generate_trace(t);
    std::printf("trace: %.0f sessions/s for %.0f s (%zu requests counting "
                "follow-up turns)\n\n",
                t.arrival_rate, t.duration_s, trace.size());
    std::printf("%12s  %8s  %12s  %12s  %8s  %8s  %7s  %7s\n", "config",
                "tok/s", "inter. p99", "inter. SLO", "handoff", "wire GB",
                "recomp", "defer");
    struct DisaggRow {
      const char* label;
      std::size_t prefill;  // 0 = symmetric
      bool outage;
    };
    const DisaggRow rows[] = {
        {"4-rep symm", 0, false}, {"2p2d", 2, false},
        {"3p1d", 3, false},       {"2p2d+kill", 2, true},
        {"3p1d+kill", 3, true},
    };
    for (const DisaggRow& row : rows) {
      turbo::fleet::FleetConfig cfg;
      cfg.engine.device = turbo::sim::a100_pcie_40gb();
      cfg.engine.geometry = turbo::sim::phi3_mini_geometry();
      cfg.engine.method = AttnMethod::kTurbo;
      cfg.engine.attention.kv_bits = 4.0;
      cfg.engine.memory_headroom = 0.35;
      cfg.engine.policy = SchedPolicy::kClassAware;
      cfg.replicas = 4;
      cfg.prefill_replicas = row.prefill;
      if (row.outage) {
        cfg.engine.faults.replicas[0].add_outage(2.0, 8.0);
      }
      const turbo::fleet::FleetMetrics m =
          turbo::fleet::summarize_fleet(turbo::fleet::run_fleet(cfg, trace));
      const ClassBreakdown& inter = m.fleet.by_class[0];
      std::printf("%12s  %8.0f  %11.2fs  %11.1f%%  %8zu  %8.2f  %7zu  "
                  "%7zu\n",
                  row.label, m.fleet.output_tokens_per_s, inter.ttft_p99,
                  100.0 * inter.ttft_attainment, m.handoffs, m.handoff_gb,
                  m.handoff_recomputes + m.role_fallback_prefills,
                  m.backpressure_deferrals);
    }
  }
  std::printf("\nExpected: at equal replica count, the disaggregated "
              "fleets give long prompts a decode-free prefill lane, so "
              "interactive TTFT-SLO attainment is >= the symmetric fleet "
              "(target: 2p2d at or above symmetric) and the TTFT p99 "
              "drops by an order of magnitude; the handoff column shows "
              "every finished prefill crossing the interconnect. The "
              "split spends throughput to buy the TTFT floor — 3p1d "
              "funnels all decoding through one replica and pays for it "
              "in tok/s plus backpressure deferrals. Killing prefill "
              "replica 0 mid-run re-routes its prompts to the surviving "
              "prefill pool — p99 roughly doubles but attainment holds "
              "and every request still reaches a terminal state.\n");

  // --- Crash recovery: what a snapshot cadence buys back -----------------
  // An outage drains politely; a crash loses the process. The rows
  // compare the same mid-run crash of replica 1 with recovery by
  // recompute-only (no snapshots) against recovery from a 1-second
  // crash-consistent snapshot cadence: the restore ladder re-admits
  // snapshotted streams through the swap-in path and recomputes from the
  // prompt only what the snapshot predates or a failed CRC invalidates.
  std::printf("\n=== Crash recovery: 4x Phi3-mini replicas on "
              "A100-PCIe-40GB, headroom 0.35, Turbo-4 ===\n");
  std::printf("crash rows: replica 1 crashes at t=6 s, restarts 0.5 s "
              "later; snapshot rows persist every replica each 1 s\n\n");
  {
    TraceConfig t;
    t.arrival_rate = 88.0;
    t.duration_s = 20.0;
    t.prompt_log_mean = 5.5;
    t.prompt_log_std = 0.5;
    t.gen_log_mean = 5.0;
    t.gen_log_std = 0.5;
    t.seed = 17;
    t.class_mix = {0.3, 0.5, 0.2};
    t.ttft_deadline_s = {2.5, 20.0, 0.0};
    const auto trace = generate_trace(t);
    std::printf("trace: %.0f req/s for %.0f s (%zu requests)\n\n",
                t.arrival_rate, t.duration_s, trace.size());
    std::printf("%16s  %8s  %12s  %8s  %8s  %8s  %8s\n", "config", "tok/s",
                "inter. SLO", "recomp", "replayed", "restored", "snaps");
    struct CrashRow {
      const char* label;
      bool crash;
      double snapshot_interval_s;
    };
    const CrashRow rows[] = {
        {"no-crash", false, 0.0},
        {"crash no-snap", true, 0.0},
        {"crash+snap 1s", true, 1.0},
    };
    for (const CrashRow& row : rows) {
      turbo::fleet::FleetConfig cfg;
      cfg.engine.device = turbo::sim::a100_pcie_40gb();
      cfg.engine.geometry = turbo::sim::phi3_mini_geometry();
      cfg.engine.method = AttnMethod::kTurbo;
      cfg.engine.attention.kv_bits = 4.0;
      cfg.engine.memory_headroom = 0.35;
      cfg.engine.policy = SchedPolicy::kClassAware;
      cfg.replicas = 4;
      cfg.snapshot_interval_s = row.snapshot_interval_s;
      if (row.crash) {
        cfg.engine.faults.replicas[1].crash_at_s = 6.0;
        cfg.engine.faults.replicas[1].restart_delay_s = 0.5;
      }
      const turbo::fleet::FleetMetrics m =
          turbo::fleet::summarize_fleet(turbo::fleet::run_fleet(cfg, trace));
      const ClassBreakdown& inter = m.fleet.by_class[0];
      std::printf("%16s  %8.0f  %11.1f%%  %8zu  %8zu  %8zu  %8zu\n",
                  row.label, m.fleet.output_tokens_per_s,
                  100.0 * inter.ttft_attainment, m.fleet.recomputed_tokens,
                  m.fleet.replayed_tokens, m.fleet.restored_requests,
                  m.fleet.snapshots_written);
    }
  }
  std::printf("\nExpected: a crash with no snapshots recovers every lost "
              "stream by recompute-from-prompt — the recomputed-token "
              "column spikes and interactive attainment dips while the "
              "restarted replica re-derives KV it already had. The "
              "1-second snapshot cadence restores most streams from the "
              "last checkpoint instead: recomputed and replayed tokens "
              "drop measurably versus the snapshot-free crash, the "
              "restored column shows the requests that came back warm, "
              "and attainment lands between the clean run and the "
              "recompute-only crash.\n");
  return 0;
}
