// Shared method-suite construction for the accuracy benches (Tables 2-5,
// Figure 7b): builds the KvAttention factories under comparison with the
// paper's hyperparameters (g = n_b = 64 scaled to the simulated head_dim,
// GEAR-L rank 4, half the heads 2-bit for the mixed row).
#pragma once

#include <string>
#include <vector>

#include "attention/turbo_method.h"
#include "baselines/fp16_method.h"
#include "baselines/gear.h"
#include "baselines/kivi.h"
#include "tasks/retrieval.h"

namespace turbo::bench {

struct NamedFactory {
  std::string label;
  std::string bits;  // display string for the "Bit" column
  KvAttentionFactory factory;
};

inline AttentionConfig default_attention() {
  AttentionConfig cfg;
  cfg.block_rows = 64;
  cfg.block_cols = 64;
  return cfg;
}

inline NamedFactory fp16_method() {
  return {"FP16", "16", make_fp16_factory(default_attention())};
}

inline NamedFactory kivi_method(BitWidth bits, std::size_t head_dim) {
  KiviConfig cfg;
  cfg.attention = default_attention();
  cfg.bits = bits;
  // Paper setting g = n_b = 64 on ~1k prompts; our simulated contexts are
  // ~4x shorter, so the token-granular knobs scale to 32 to keep the
  // residual window the same *fraction* of context.
  cfg.group = 32;
  cfg.residual = 32;
  (void)head_dim;
  return {"KIVI", std::to_string(bit_count(bits)),
          make_kivi_factory(cfg)};
}

inline NamedFactory gear_method(BitWidth bits, std::size_t head_dim) {
  GearConfig cfg;
  cfg.attention = default_attention();
  cfg.bits = bits;
  cfg.rank = 4;
  cfg.residual = 32;  // context-scaled, matching the KIVI setting
  cfg.chunk = std::min<std::size_t>(32, head_dim);
  return {"GEAR-L", std::to_string(bit_count(bits)),
          make_gear_factory(cfg)};
}

inline NamedFactory turbo_method(BitWidth bits) {
  TurboMethodConfig cfg;
  cfg.attention = default_attention();
  cfg.kv_bits = bits;
  cfg.buffer_capacity = 64;
  return {"TurboAttention", std::to_string(bit_count(bits)),
          make_turbo_factory(cfg)};
}

// Head-wise mixed precision: the n lowest-priority heads (from the task's
// generated K/V statistics) at 2-bit, the rest at 4-bit.
inline NamedFactory turbo_mixed_method(const tasks::RetrievalConfig& task,
                                       std::size_t n_2bit,
                                       HeadSelectionMetric metric =
                                           HeadSelectionMetric::kPriority) {
  const std::vector<HeadStats> stats = tasks::retrieval_head_stats(task);
  const std::vector<BitWidth> bits =
      select_head_bits(stats, n_2bit, metric);
  TurboMethodConfig cfg;
  cfg.attention = default_attention();
  cfg.buffer_capacity = 64;
  return {"TurboAttention(mixed)", "2/4",
          make_turbo_mixed_factory(cfg, bits)};
}

}  // namespace turbo::bench
