# One binary per table/figure of the paper, plus measured microbenchmarks.
# Every binary runs argument-free and prints the rows/series the paper
# reports (see EXPERIMENTS.md for the paper-vs-measured record).
# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench holds ONLY the bench executables — the
# documented reproduction command is a glob over that directory.
function(turbo_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  target_link_libraries(${name} PRIVATE turbo::turbo)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

turbo_add_bench(bench_fig1_latency_profile)
turbo_add_bench(bench_fig4_qkv_distribution)
turbo_add_bench(bench_fig5_sas_fit)
turbo_add_bench(bench_fig6_speedup)
turbo_add_bench(bench_fig7a_throughput)
turbo_add_bench(bench_fig7b_head_selection)
turbo_add_bench(bench_fig8_9_value_gaps)
turbo_add_bench(bench_fig10_quant_error)
turbo_add_bench(bench_table2_accuracy)
turbo_add_bench(bench_table3_blocksize)
turbo_add_bench(bench_table4_ablation)
turbo_add_bench(bench_table5_integration)
turbo_add_bench(bench_ablation_design)
turbo_add_bench(bench_serving)
turbo_add_bench(bench_whatif_hardware)
turbo_add_bench(bench_ablation_depth)

# Measured CPU-kernel microbenchmarks (google-benchmark).
add_executable(bench_kernels ${CMAKE_SOURCE_DIR}/bench/bench_kernels.cpp)
target_include_directories(bench_kernels PRIVATE ${CMAKE_SOURCE_DIR})
target_link_libraries(bench_kernels PRIVATE turbo::turbo
  benchmark::benchmark benchmark::benchmark_main)
set_target_properties(bench_kernels PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
