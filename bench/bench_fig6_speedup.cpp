// Figure 6 — attention-mechanism speedup over FlashAttention-FP16 for
// Phi3-medium on an A100-80GB: prefill and decode, swept over batch size
// (context 1k) and context length (batch 4). OOM marks configurations
// whose FP16 KV cache (+weights) exceeds device memory.
#include <cstdio>
#include <vector>

#include "sim/e2e_model.h"

namespace {

using namespace turbo::sim;

struct MethodRow {
  AttnMethod method;
  double bits;
  const char* label;
};

constexpr MethodRow kMethods[] = {
    {AttnMethod::kKiviFlash, 4.0, "KIVI-4+Flash"},
    {AttnMethod::kGearFlash, 4.0, "GEAR-4+Flash"},
    {AttnMethod::kTurbo, 4.0, "Turbo-4"},
    {AttnMethod::kTurbo, 3.0, "Turbo-2/4mix"},
};

bool oom(const DeviceSpec& dev, const ModelGeometry& geom, AttnMethod m,
         double bits, std::size_t batch, std::size_t ctx) {
  InferenceConfig c;
  c.method = m;
  c.attention.kv_bits = bits;
  c.batch = batch;
  c.prompt = ctx;
  c.generate = 0;
  return !memory_use(dev, geom, c).fits;
}

void sweep(const DeviceSpec& dev, const ModelGeometry& geom, bool prefill,
           const std::vector<std::pair<std::size_t, std::size_t>>& configs,
           const char* title) {
  std::printf("\n-- %s --\n", title);
  std::printf("%8s %8s  %14s |", "batch", "ctx", "Flash-FP16(ms)");
  for (const MethodRow& m : kMethods) std::printf(" %13s", m.label);
  std::printf("\n");

  for (const auto& [batch, ctx] : configs) {
    AttnShape shape;
    shape.batch = batch;
    shape.heads = geom.heads;
    shape.kv_heads = geom.kv_heads;
    shape.head_dim = geom.head_dim;
    shape.q_len = prefill ? ctx : 1;
    shape.kv_len = ctx;

    AttnCostConfig base_cfg;
    base_cfg.kv_bits = 16.0;
    const double base =
        (prefill
             ? attention_prefill_cost(dev, AttnMethod::kFlashFp16, shape,
                                      base_cfg)
             : attention_decode_cost(dev, AttnMethod::kFlashFp16, shape,
                                     base_cfg))
            .total();
    const bool base_oom =
        oom(dev, geom, AttnMethod::kFlashFp16, 16.0, batch, ctx);
    if (base_oom) {
      std::printf("%8zu %8zu  %14s |", batch, ctx, "OOM");
    } else {
      std::printf("%8zu %8zu  %14.3f |", batch, ctx, base * 1e3);
    }

    for (const MethodRow& m : kMethods) {
      if (oom(dev, geom, m.method, m.bits, batch, ctx)) {
        std::printf(" %13s", "OOM");
        continue;
      }
      AttnCostConfig cfg;
      cfg.kv_bits = m.bits;
      const double t =
          (prefill ? attention_prefill_cost(dev, m.method, shape, cfg)
                   : attention_decode_cost(dev, m.method, shape, cfg))
              .total();
      if (base_oom) {
        std::printf(" %10.3fms", t * 1e3);
      } else {
        std::printf(" %12.2fx", base / t);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry geom = phi3_medium_geometry();
  std::printf("=== Figure 6 reproduction: attention speedup vs "
              "FlashAttention-FP16 (%s, %s) ===\n",
              geom.name.c_str(), dev.name.c_str());
  std::printf("Values are speedup factors over the FP16 baseline "
              "(absolute ms when the baseline itself is OOM).\n");

  const std::vector<std::pair<std::size_t, std::size_t>> batch_sweep = {
      {1, 1024}, {4, 1024}, {16, 1024}, {64, 1024}};
  const std::vector<std::pair<std::size_t, std::size_t>> ctx_sweep = {
      {4, 4096}, {4, 8192}, {4, 16384}, {4, 32768}};

  sweep(dev, geom, /*prefill=*/true, batch_sweep,
        "Prefill, batch sweep @ context 1k");
  sweep(dev, geom, /*prefill=*/true, ctx_sweep,
        "Prefill, context sweep @ batch 4");
  sweep(dev, geom, /*prefill=*/false, batch_sweep,
        "Decode, batch sweep @ context 1k");
  sweep(dev, geom, /*prefill=*/false, ctx_sweep,
        "Decode, context sweep @ batch 4");
  return 0;
}
