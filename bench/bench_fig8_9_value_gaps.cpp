// Figures 8 & 9 — value-cache min-max gap distributions, channel-wise vs
// token-wise, for LLaMA3-8B and Phi3-mini. The Appendix D observation:
// channel gaps dominate token gaps, with Phi-3 far more extreme — which is
// why token-wise value quantization (KIVI/GEAR) underperforms on Phi-3.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "model/generator.h"

namespace {

using namespace turbo;
using namespace turbo::model;

void report(const ModelProfile& profile) {
  QkvGenerator gen(profile, /*seed=*/1234);
  std::vector<float> channel_gaps;
  std::vector<float> token_gaps;
  for (std::size_t h = 0; h < profile.heads; ++h) {
    const HeadTensors t = gen.generate_head(h, 512);
    for (const auto& mm : channel_min_max(t.v)) {
      channel_gaps.push_back(mm.gap());
    }
    for (const auto& mm : token_min_max(t.v)) {
      token_gaps.push_back(mm.gap());
    }
  }
  std::printf("\n-- %s value cache (all heads, 512 tokens) --\n",
              profile.name.c_str());
  std::printf("%12s  %8s  %8s  %8s  %8s\n", "axis", "p50", "p90", "p99",
              "max");
  for (const auto& [label, gaps] :
       {std::pair<const char*, std::vector<float>&>{"channelwise",
                                                    channel_gaps},
        {"tokenwise", token_gaps}}) {
    std::printf("%12s  %8.2f  %8.2f  %8.2f  %8.2f\n", label,
                percentile(gaps, 50), percentile(gaps, 90),
                percentile(gaps, 99), percentile(gaps, 100));
  }
  std::printf("  channel-tail dominance (p99/p50, channelwise) = %.2f\n",
              percentile(channel_gaps, 99) / percentile(channel_gaps, 50));
}

}  // namespace

int main() {
  std::printf("=== Figures 8/9 reproduction: value-cache min-max gap "
              "distributions ===\n");
  report(llama3_8b_profile());  // Figure 8
  report(phi3_mini_profile());  // Figure 9
  std::printf("\nExpected: a heavy channel-wise tail for both models "
              "(p99 >> p50 along channels but not tokens), far more "
              "extreme on Phi-3 — its channelwise p99 is several times "
              "LLaMA-3's.\n");
  return 0;
}
