// Table 5 — composing TurboAttention with weight/activation quantization.
//
// The paper stacks TurboAttention on LLM.int8() (W8A8) and QServe (W4A8)
// and shows the accuracy losses add up to a still-near-lossless total. The
// upstream quantizers are *implemented* (src/linear): their measured
// forward error on a representative QKV projection sets the Gaussian
// perturbation applied to the attention inputs, and proxy-task accuracy is
// then measured with and without TurboAttention on top.
#include <cstdio>

#include "bench/task_methods.h"
#include "common/rng.h"
#include "common/stats.h"
#include "linear/quantized_linear.h"
#include "model/profile.h"
#include "tasks/retrieval.h"

namespace {

turbo::MatrixF test_weights() {
  turbo::MatrixF w(128, 256);
  turbo::Rng rng(4);
  rng.fill_normal(w.flat(), 0.0, 0.03);  // typical projection weight scale
  return w;
}

// Measured relative error of a quantized QKV-style projection on Gaussian
// activations — the true "input noise" the attention layer inherits.
double measured_projection_error(turbo::linear::WeightScheme scheme) {
  using namespace turbo;
  const MatrixF w = test_weights();
  MatrixF x(64, 256);
  Rng rng(5);
  rng.fill_normal(x.flat(), 0.0, 1.0);
  linear::QuantizedLinear layer(w, scheme);
  return relative_error(layer.forward(x), matmul_transposed(x, w));
}

}  // namespace

int main() {
  using namespace turbo;
  using namespace turbo::bench;
  using namespace turbo::tasks;

  std::printf("=== Table 5 reproduction: composition with linear-layer "
              "quantization ===\n\n");

  struct Stack {
    const char* upstream;
    double noise;
  };
  const Stack stacks[] = {
      {"LLM.int8()",
       measured_projection_error(linear::WeightScheme::kW8)},
      {"QServe(W4A8)",
       measured_projection_error(linear::WeightScheme::kW4)},
  };
  for (const Stack& s : stacks) {
    std::printf("measured %s projection rel. error: %.4f (used as input "
                "noise)\n", s.upstream, s.noise);
  }
  std::printf("\n%-16s %-12s %-28s %s\n", "Model", "Dataset", "Method",
              "Acc");

  RetrievalConfig base = gsm8k_proxy(model::llama3_8b_profile());

  auto run = [&](const RetrievalConfig& task, const char* label,
                 const KvAttentionFactory& factory) {
    const TaskResult r = run_retrieval(task, factory);
    std::printf("%-16s %-12s %-28s %5.1f\n", "LLaMA3-8B-proxy",
                "GSM8k-proxy", label, 100.0 * r.accuracy);
  };

  run(base, "FP16", make_fp16_factory(default_attention()));

  for (const Stack& s : stacks) {
    RetrievalConfig noisy = base;
    noisy.input_noise = s.noise;
    char label[96];
    std::snprintf(label, sizeof(label), "%s", s.upstream);
    run(noisy, label, make_fp16_factory(default_attention()));

    TurboMethodConfig turbo;
    turbo.attention = default_attention();
    std::snprintf(label, sizeof(label), "%s + TurboAttention", s.upstream);
    run(noisy, label, make_turbo_factory(turbo));
  }

  std::printf("\nPaper shape: upstream quantization costs a fraction of a "
              "point; adding TurboAttention costs another fraction — the "
              "losses compose additively, no interaction blow-up.\n");
  return 0;
}
