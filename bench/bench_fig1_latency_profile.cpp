// Figure 1 — latency profile of Phi3-medium on an A100-80GB.
//
//  (a) Attention's share of end-to-end generation time as the prompt
//      grows (prompt:output = 8:1).
//  (b) Decode attention-kernel timeshare per method: where KV-compression
//      baselines lose their bandwidth savings to dequantization.
//  (c) End-to-end inference timeshare per method.
#include <cstdio>

#include "sim/e2e_model.h"

namespace {

using namespace turbo::sim;

InferenceConfig make_config(AttnMethod m, double bits, std::size_t batch,
                            std::size_t prompt, std::size_t gen) {
  InferenceConfig c;
  c.method = m;
  c.attention.kv_bits = bits;
  c.batch = batch;
  c.prompt = prompt;
  c.generate = gen;
  return c;
}

struct MethodRow {
  AttnMethod method;
  double bits;
};

constexpr MethodRow kMethods[] = {
    {AttnMethod::kFlashFp16, 16.0},
    {AttnMethod::kKiviFlash, 4.0},
    {AttnMethod::kGearFlash, 4.0},
    {AttnMethod::kTurbo, 3.0},
};

void figure_1a(const DeviceSpec& dev, const ModelGeometry& geom) {
  std::printf("-- Figure 1a: attention share of end-to-end latency "
              "(prompt:output = 8:1, batch 1, %s) --\n", geom.name.c_str());
  std::printf("%10s  %22s  %12s  %12s\n", "prompt", "method", "total(s)",
              "attn share");
  for (std::size_t prompt : {1024u, 4096u, 16384u, 40960u, 81920u}) {
    for (const MethodRow& m : kMethods) {
      const InferenceConfig cfg =
          make_config(m.method, m.bits, 1, prompt, prompt / 8);
      // Whole generation: prefill + decode steps, each decomposed.
      const E2EBreakdown pre = prefill_breakdown(dev, geom, cfg);
      const E2EBreakdown dec =
          decode_step_breakdown(dev, geom, cfg, prompt + prompt / 16);
      const double steps = static_cast<double>(cfg.generate);
      const double total = pre.total() + dec.total() * steps;
      const double attn = pre.attention() + dec.attention() * steps;
      std::printf("%10zu  %22s  %12.3f  %11.1f%%\n", prompt,
                  attn_method_name(m.method).data(), total,
                  100.0 * attn / total);
    }
  }
}

void figure_1b(const DeviceSpec& dev, const ModelGeometry& geom) {
  std::printf("\n-- Figure 1b: decode attention-kernel timeshare "
              "(context 8k, batch 4) --\n");
  std::printf("%22s  %10s  %10s  %10s  %10s  %10s  %10s\n", "method",
              "total(ms)", "matmul", "softmax", "kv-load", "dequant",
              "other");
  AttnShape shape;
  shape.batch = 4;
  shape.heads = geom.heads;
  shape.kv_heads = geom.kv_heads;
  shape.q_len = 1;
  shape.kv_len = 8192;
  shape.head_dim = geom.head_dim;
  for (const MethodRow& m : kMethods) {
    AttnCostConfig cfg;
    cfg.kv_bits = m.bits;
    const PhaseBreakdown b =
        attention_decode_cost(dev, m.method, shape, cfg);
    const double total = b.total();
    auto pct = [total](double x) { return 100.0 * x / total; };
    std::printf("%22s  %10.3f  %9.1f%%  %9.1f%%  %9.1f%%  %9.1f%%  %9.1f%%\n",
                attn_method_name(m.method).data(), total * 1e3,
                pct(b.qk_matmul + b.pv_matmul), pct(b.softmax), pct(b.kv_io),
                pct(b.dequant + b.serialized), pct(b.quantize + b.launch));
  }
  std::printf("(fused kernels overlap compute with kv-load; shares can "
              "exceed 100%%)\n");
}

void figure_1c(const DeviceSpec& dev, const ModelGeometry& geom) {
  std::printf("\n-- Figure 1c: end-to-end inference timeshare "
              "(prompt 8k, generate 1k, batch 4) --\n");
  std::printf("%22s  %10s  %8s  %8s  %8s  %8s  %8s\n", "method", "total(s)",
              "linear", "matmul", "softmax", "kv+deq", "other");
  for (const MethodRow& m : kMethods) {
    const InferenceConfig cfg = make_config(m.method, m.bits, 4, 8192, 1024);
    const E2EBreakdown pre = prefill_breakdown(dev, geom, cfg);
    const E2EBreakdown dec = decode_step_breakdown(dev, geom, cfg, 8704);
    const double steps = static_cast<double>(cfg.generate);
    auto sum = [&](auto f) { return f(pre) + f(dec) * steps; };
    const double total = sum([](const E2EBreakdown& b) { return b.total(); });
    auto pct = [&](auto f) { return 100.0 * sum(f) / total; };
    std::printf(
        "%22s  %10.2f  %7.1f%%  %7.1f%%  %7.1f%%  %7.1f%%  %7.1f%%\n",
        attn_method_name(m.method).data(), total,
        pct([](const E2EBreakdown& b) { return b.linear; }),
        pct([](const E2EBreakdown& b) { return b.attn_matmul; }),
        pct([](const E2EBreakdown& b) { return b.attn_softmax; }),
        pct([](const E2EBreakdown& b) {
          return b.attn_kv_io + b.attn_dequant;
        }),
        pct([](const E2EBreakdown& b) { return b.attn_other; }));
  }
}

}  // namespace

int main() {
  const DeviceSpec dev = a100_sxm_80gb();
  const ModelGeometry geom = phi3_medium_geometry();
  std::printf("=== Figure 1 reproduction: %s on %s (analytical model) ===\n\n",
              geom.name.c_str(), dev.name.c_str());
  figure_1a(dev, geom);
  figure_1b(dev, geom);
  figure_1c(dev, geom);
  return 0;
}
