// Figure 5 — polynomial fit of the fractional exponent.
//
// Prints POLY(t) against e^{-t} over [0, 1] (the figure's curve) and the
// end-to-end SAS error over the full active range [n_r, 0].
#include <cmath>
#include <cstdio>

#include "softmax/sas.h"

int main() {
  using turbo::Sas;
  using turbo::SasConfig;

  std::printf("=== Figure 5 reproduction: POLY(t) vs e^{-t} on [0, 1] ===\n");
  std::printf("%8s  %12s  %12s  %12s\n", "t", "exp(-t)", "POLY(t)",
              "abs err");
  double max_err = 0.0;
  double sum_err = 0.0;
  const int samples = 1000;
  for (int i = 0; i <= samples; ++i) {
    const float t = static_cast<float>(i) / samples;
    const double exact = std::exp(-static_cast<double>(t));
    const double approx = Sas::poly(t);
    const double err = std::abs(approx - exact);
    max_err = std::max(max_err, err);
    sum_err += err;
    if (i % 100 == 0) {
      std::printf("%8.2f  %12.6f  %12.6f  %12.2e\n", t, exact, approx, err);
    }
  }
  std::printf("max |err| = %.2e, mean |err| = %.2e over %d samples\n",
              max_err, sum_err / (samples + 1), samples + 1);

  std::printf("\n=== SAS end-to-end: LUT x POLY over [n_r, 0] ===\n");
  std::printf("%22s  %12s  %12s\n", "config", "max abs err", "tail cutoff");
  for (int threshold : {-4, -6, -8}) {
    for (bool fp16 : {false, true}) {
      const Sas sas(SasConfig{.threshold = threshold,
                              .fp16_arithmetic = fp16});
      double worst = 0.0;
      for (int i = 0; i <= 2000; ++i) {
        const float x =
            static_cast<float>(threshold) * static_cast<float>(i) / 2000.0f;
        worst = std::max(worst, std::abs(static_cast<double>(sas.exp_neg(x)) -
                                         std::exp(static_cast<double>(x))));
      }
      std::printf("  n_r=%3d %s  %12.2e  %12.2e\n", threshold,
                  fp16 ? "fp16" : "fp32", worst,
                  std::exp(static_cast<double>(threshold)));
    }
  }
  return 0;
}
