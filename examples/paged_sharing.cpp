// Paged KV cache with copy-on-write system-prompt sharing.
//
// A serving fleet answering many chats that share one long system prompt
// should hold that prompt's KV exactly once. This example prefills the
// shared prompt into one sequence, forks it per user (zero-copy: full
// pages are reference-counted), lets each conversation diverge, and shows
// the memory the combination of paging + FlashQ compression saves — while
// verifying every sequence still decodes correctly via the fused kernel.
#include <cstdio>
#include <vector>

#include "attention/reference.h"
#include "attention/turbo.h"
#include "common/rng.h"
#include "common/stats.h"
#include "kernels/fused_decode.h"
#include "kvcache/paged_cache.h"

int main() {
  using namespace turbo;

  const std::size_t d = 64;
  const std::size_t page_tokens = 64;
  const std::size_t system_tokens = 512;
  const std::size_t n_users = 8;
  const std::size_t turns_per_user = 48;

  PagedKvCache cache(d, BitWidth::kInt4, page_tokens, /*page_count=*/256);
  const AttentionConfig cfg;
  const Sas sas;
  Rng rng(1);

  // Shared system prompt, prefilled once.
  const auto base = cache.create_sequence();
  MatrixF sys_k(system_tokens, d);
  MatrixF sys_v(system_tokens, d);
  rng.fill_normal(sys_k.flat(), 0.0, 1.0);
  rng.fill_normal(sys_v.flat(), 0.0, 1.0);
  for (std::size_t b = 0; b < system_tokens; b += page_tokens) {
    const bool ok = cache.append_prefill_block(
        base,
        quantize_tile_int8(sys_k.block_rows(b, page_tokens)),
        quantize_tile_int8(sys_v.block_rows(b, page_tokens)));
    if (!ok) {
      std::printf("out of pages during prefill\n");
      return 1;
    }
  }
  std::printf("system prompt: %zu tokens in %zu pages\n", system_tokens,
              cache.used_pages());

  // Fork one sequence per user — no pages consumed.
  std::vector<PagedKvCache::SeqId> users;
  for (std::size_t u = 0; u < n_users; ++u) {
    users.push_back(cache.fork_sequence(base));
  }
  std::printf("forked %zu user sequences: still %zu pages used, %zu "
              "shared\n", n_users, cache.used_pages(),
              cache.shared_pages());

  // Each conversation diverges; each decode goes through the fused kernel
  // and is sanity-checked against exact attention on the user's history.
  double worst_err = 0.0;
  std::vector<MatrixF> hist_k(n_users, sys_k);
  std::vector<MatrixF> hist_v(n_users, sys_v);
  for (std::size_t turn = 0; turn < turns_per_user; ++turn) {
    for (std::size_t u = 0; u < n_users; ++u) {
      std::vector<float> q(d);
      std::vector<float> k(d);
      std::vector<float> v(d);
      rng.fill_normal(q, 0.0, 1.0);
      rng.fill_normal(k, 0.0, 1.0);
      rng.fill_normal(v, 0.0, 1.0);
      if (!cache.append_token(users[u], k, v)) {
        std::printf("out of pages at turn %zu\n", turn);
        return 1;
      }
      hist_k[u].append_row(std::span<const float>(k));
      hist_v[u].append_row(std::span<const float>(v));
      const auto o = fused_turbo_decode(
          q, cache.blocks(users[u]), cache.key_buffer(users[u]),
          cache.value_buffer(users[u]), cfg, sas);
      const auto exact = reference_decode(q, hist_k[u], hist_v[u], cfg);
      worst_err = std::max(worst_err, relative_error(o, exact));
    }
  }

  const std::size_t total_tokens = cache.token_count(users[0]) * n_users;
  const double fp16_private =
      static_cast<double>(total_tokens) * d * 2 * 2;  // K+V, FP16, no sharing
  std::printf("\nafter %zu turns x %zu users:\n", turns_per_user, n_users);
  std::printf("  pages used: %zu (%zu still shared)\n", cache.used_pages(),
              cache.shared_pages());
  std::printf("  compressed+shared bytes: %zu\n", cache.memory_bytes());
  std::printf("  private FP16 equivalent: %.0f  ->  %.1fx smaller\n",
              fp16_private,
              fp16_private / static_cast<double>(cache.memory_bytes()));
  std::printf("  worst decode rel. error vs exact: %.4f\n", worst_err);
  return 0;
}
