// Quickstart: run TurboAttention on one head and compare against exact
// attention.
//
//   $ ./quickstart
//
// Walks through the three core API surfaces:
//   1. turbo_attention_prefill — quantized FlashAttention over a prompt,
//      compressing K/V into a QuantizedKvCache on the way.
//   2. QuantizedKvCache::append_token — decode-time cache growth through
//      the INT8 buffer.
//   3. turbo_attention_decode — integer attention over the packed cache.
#include <cstdio>

#include "attention/reference.h"
#include "attention/turbo.h"
#include "common/rng.h"
#include "common/stats.h"

int main() {
  using namespace turbo;

  const std::size_t prompt_tokens = 512;
  const std::size_t head_dim = 64;

  // A synthetic prompt: one attention head's Q/K/V.
  Rng rng(42);
  MatrixF q(prompt_tokens, head_dim);
  MatrixF k(prompt_tokens, head_dim);
  MatrixF v(prompt_tokens, head_dim);
  rng.fill_normal(q.flat(), 0.0, 1.0);
  rng.fill_normal(k.flat(), 0.0, 1.0);
  rng.fill_normal(v.flat(), 0.0, 1.0);

  // Configure: 64x64 FlashAttention tiles, 4-bit KV, SAS softmax with the
  // paper's defaults (threshold -6, FP16 arithmetic).
  AttentionConfig cfg;         // causal, Br = Bc = 64
  const Sas sas;               // SAS softmax approximation
  QuantizedKvCache cache(head_dim, BitWidth::kInt4, cfg.block_cols,
                         /*buffer_capacity=*/64);

  // 1. Quantized prefill.
  const TurboPrefillResult turbo =
      turbo_attention_prefill(q, k, v, cfg, sas, &cache);
  const MatrixF exact = reference_attention(q, k, v, cfg);

  std::printf("prefill: %zu tokens, head_dim %zu\n", prompt_tokens,
              head_dim);
  std::printf("  relative error vs FP32 exact: %.4f\n",
              relative_error(turbo.o, exact));
  std::printf("  KV cache: %zu bytes (FP16 would be %zu) -> %.1fx smaller\n",
              cache.memory_bytes(), 2 * prompt_tokens * head_dim * 2 * 2,
              static_cast<double>(2 * prompt_tokens * head_dim * 2 * 2) /
                  static_cast<double>(cache.memory_bytes()));

  // 2./3. Decode 100 tokens against the compressed cache.
  MatrixF k_all = k;
  MatrixF v_all = v;
  double worst = 0.0;
  for (int step = 0; step < 100; ++step) {
    std::vector<float> qt(head_dim);
    std::vector<float> kt(head_dim);
    std::vector<float> vt(head_dim);
    rng.fill_normal(qt, 0.0, 1.0);
    rng.fill_normal(kt, 0.0, 1.0);
    rng.fill_normal(vt, 0.0, 1.0);
    cache.append_token(kt, vt);
    k_all.append_row(std::span<const float>(kt));
    v_all.append_row(std::span<const float>(vt));

    const auto o = turbo_attention_decode(qt, cache, cfg, sas);
    const auto ref = reference_decode(qt, k_all, v_all, cfg);
    worst = std::max(worst, relative_error(o, ref));
  }
  std::printf("decode: 100 steps, worst relative error vs exact: %.4f\n",
              worst);
  std::printf("  cache now holds %zu tokens in %zu packed blocks + %zu "
              "buffered\n",
              cache.token_count(), cache.block_count(),
              cache.key_buffer().size());
  return 0;
}
