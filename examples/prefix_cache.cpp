// Disk prefix caching: prefill once, reuse forever.
//
// A few-shot CoT prompt (the paper's evaluation prompts are ~900-1300
// tokens of fixed demonstrations) costs a full prefill on every request.
// With the compressed cache serialized to disk, later sessions load the
// packed pages instead of recomputing them — and the file is ~6x smaller
// than an FP16 dump would be. This example measures both.
#include <chrono>
#include <cstdio>

#include "attention/turbo.h"
#include "common/rng.h"
#include "common/stats.h"
#include "kvcache/serialization.h"

int main() {
  using namespace turbo;
  using Clock = std::chrono::steady_clock;

  const std::size_t prompt_tokens = 1024;
  const std::size_t d = 64;

  Rng rng(3);
  MatrixF q(prompt_tokens, d);
  MatrixF k(prompt_tokens, d);
  MatrixF v(prompt_tokens, d);
  rng.fill_normal(q.flat(), 0.0, 1.0);
  rng.fill_normal(k.flat(), 0.0, 1.0);
  rng.fill_normal(v.flat(), 0.0, 1.0);

  const AttentionConfig cfg;
  const Sas sas;

  // Session 1: prefill and persist.
  QuantizedKvCache cache(d, BitWidth::kInt4, cfg.block_cols, 64);
  const auto t0 = Clock::now();
  turbo_attention_prefill(q, k, v, cfg, sas, &cache);
  const auto t1 = Clock::now();
  const std::string path = "/tmp/turbo_prefix.tkvc";
  save_cache(cache, path);
  const auto bytes = serialize_cache(cache);
  std::printf("session 1: prefilled %zu tokens in %.1f ms, saved %zu "
              "bytes (FP16 dump would be %zu)\n",
              prompt_tokens,
              std::chrono::duration<double, std::milli>(t1 - t0).count(),
              bytes.size(), 2 * prompt_tokens * d * 2);

  // Session 2: load instead of prefilling.
  const auto t2 = Clock::now();
  QuantizedKvCache loaded = load_cache(path);
  const auto t3 = Clock::now();
  std::printf("session 2: loaded %zu tokens in %.2f ms (%.0fx faster than "
              "the prefill it replaces)\n",
              loaded.token_count(),
              std::chrono::duration<double, std::milli>(t3 - t2).count(),
              std::chrono::duration<double>(t1 - t0).count() /
                  std::chrono::duration<double>(t3 - t2).count());

  // Decode against the loaded cache is bit-identical to the original.
  std::vector<float> query(d);
  rng.fill_normal(query, 0.0, 1.0);
  const auto a = turbo_attention_decode(query, cache, cfg, sas);
  const auto b = turbo_attention_decode(query, loaded, cfg, sas);
  std::printf("decode over loaded cache bit-identical to original: %s\n",
              a == b ? "yes" : "NO (bug!)");
  std::remove(path.c_str());
  return a == b ? 0 : 1;
}
