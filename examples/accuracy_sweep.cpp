// Accuracy explorer: sweep methods x bit-widths on one proxy task.
//
// A smaller, faster version of the Table 2 bench meant for interactive
// exploration when tuning a deployment's compression setting: prints
// accuracy and measured KV bytes/token per configuration.
#include <cstdio>

#include "bench/task_methods.h"
#include "model/profile.h"
#include "tasks/retrieval.h"

int main() {
  using namespace turbo;
  using namespace turbo::bench;
  using namespace turbo::tasks;

  model::ModelProfile profile = model::llama3_8b_profile();
  RetrievalConfig task = gsm8k_proxy(profile);
  task.n_cases = 16;  // interactive-speed subset

  std::printf("=== Accuracy sweep: %s on %s ===\n\n", task.name.c_str(),
              profile.name.c_str());
  std::printf("%-24s %6s  %10s  %14s\n", "method", "bits", "accuracy",
              "KV bytes/token");

  std::vector<NamedFactory> suite = {
      fp16_method(),
      turbo_method(BitWidth::kInt4),
      turbo_method(BitWidth::kInt3),
      turbo_method(BitWidth::kInt2),
      turbo_mixed_method(task, profile.heads / 2),
      kivi_method(BitWidth::kInt4, profile.head_dim),
      kivi_method(BitWidth::kInt2, profile.head_dim),
      gear_method(BitWidth::kInt4, profile.head_dim),
  };

  for (const NamedFactory& f : suite) {
    const TaskResult r = run_retrieval(task, f.factory);
    std::printf("%-24s %6s  %9.1f%%  %14.1f\n", f.label.c_str(),
                f.bits.c_str(), 100.0 * r.accuracy, r.kv_bytes_per_token);
  }

  std::printf("\nEdit this file to swap the profile (phi3_mini_profile, "
              "qwen2_7b_profile) or the task (aqua_proxy, bbh_proxy).\n");
  return 0;
}
