// Long-context chat session: the paper's motivating workload.
//
// Simulates a multi-turn conversation on one attention head of a
// Phi3-mini-like model: a long document prefill followed by several
// question/answer rounds, with every method's cache growing across turns.
// Reports per-turn answer fidelity (vs FP32 exact) and the cache
// footprints — the memory-vs-accuracy trade TurboAttention targets.
#include <cstdio>
#include <memory>
#include <vector>

#include "attention/turbo_method.h"
#include "baselines/fp16_method.h"
#include "baselines/gear.h"
#include "baselines/kivi.h"
#include "common/rng.h"
#include "common/stats.h"
#include "model/generator.h"

int main() {
  using namespace turbo;

  const model::ModelProfile profile = model::phi3_mini_profile();
  const std::size_t head = 5;  // a moderately outlier-heavy head
  const std::size_t d = profile.head_dim;
  const std::size_t document_tokens = 1536;
  const std::size_t turns = 6;
  const std::size_t tokens_per_turn = 96;

  model::QkvGenerator gen(profile, /*seed=*/7);
  const model::HeadTensors doc = gen.generate_head(
      head, document_tokens + turns * tokens_per_turn);

  struct Entry {
    const char* label;
    std::unique_ptr<KvAttention> method;
  };
  AttentionConfig attn;
  TurboMethodConfig turbo_cfg;
  KiviConfig kivi_cfg;
  GearConfig gear_cfg;
  std::vector<Entry> entries;
  entries.push_back({"Exact-FP32",
                     std::make_unique<ExactAttention>(d, attn)});
  entries.push_back({"Flash-FP16",
                     std::make_unique<Fp16FlashAttention>(d, attn)});
  entries.push_back({"KIVI-4bit",
                     std::make_unique<KiviAttention>(d, kivi_cfg)});
  entries.push_back({"GEAR-L-4bit",
                     std::make_unique<GearAttention>(d, gear_cfg)});
  entries.push_back({"Turbo-4bit",
                     std::make_unique<TurboKvAttention>(d, turbo_cfg)});

  // Prefill the document.
  const MatrixF q_doc = doc.q.block_rows(0, document_tokens);
  const MatrixF k_doc = doc.k.block_rows(0, document_tokens);
  const MatrixF v_doc = doc.v.block_rows(0, document_tokens);
  for (Entry& e : entries) {
    e.method->prefill(q_doc, k_doc, v_doc);
  }
  std::printf("prefilled %zu document tokens (head %zu of %s)\n\n",
              document_tokens, head, profile.name.c_str());

  // Chat turns: generate tokens, compare each method's outputs to exact.
  std::printf("%8s |", "turn");
  for (const Entry& e : entries) std::printf(" %12s", e.label);
  std::printf("   (mean decode rel. error vs Exact-FP32)\n");

  std::size_t row = document_tokens;
  for (std::size_t turn = 0; turn < turns; ++turn) {
    std::vector<double> err(entries.size(), 0.0);
    for (std::size_t t = 0; t < tokens_per_turn; ++t, ++row) {
      const auto q = doc.q.row(row);
      const auto k = doc.k.row(row);
      const auto v = doc.v.row(row);
      const auto exact = entries[0].method->decode(q, k, v);
      for (std::size_t i = 1; i < entries.size(); ++i) {
        const auto o = entries[i].method->decode(q, k, v);
        err[i] += relative_error(o, exact);
      }
    }
    std::printf("%8zu |  %12s", turn + 1, "0 (ref)");
    for (std::size_t i = 1; i < entries.size(); ++i) {
      std::printf("      %.4f",
                  err[i] / static_cast<double>(tokens_per_turn));
    }
    std::printf("\n");
  }

  std::printf("\ncache footprint after %zu total tokens:\n",
              entries[0].method->token_count());
  const double fp16_bytes =
      static_cast<double>(entries[1].method->kv_cache_bytes());
  for (const Entry& e : entries) {
    std::printf("  %-12s %9zu bytes  (%.2fx vs FP16)\n", e.label,
                e.method->kv_cache_bytes(),
                fp16_bytes / static_cast<double>(e.method->kv_cache_bytes()));
  }
  return 0;
}
