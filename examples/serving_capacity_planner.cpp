// Serving capacity planner: size a deployment with the analytical model.
//
// For each supported model and attention method, reports — on an
// A100-80GB — the largest batch that fits, the decode throughput at that
// batch, and the longest context a batch-4 deployment can serve. This is
// the operator-facing view of Figures 6/7a.
#include <cstdio>

#include "sim/e2e_model.h"

int main() {
  using namespace turbo::sim;
  const DeviceSpec dev = a100_sxm_80gb();

  struct MethodRow {
    AttnMethod method;
    double bits;
    const char* label;
  };
  const MethodRow methods[] = {
      {AttnMethod::kFlashFp16, 16.0, "Flash-FP16"},
      {AttnMethod::kKiviFlash, 4.0, "KIVI-4"},
      {AttnMethod::kTurbo, 4.0, "Turbo-4"},
      {AttnMethod::kTurbo, 3.0, "Turbo-2/4"},
  };

  std::printf("=== Serving capacity on %s (prompt 1k, generate 512) ===\n\n",
              dev.name.c_str());

  for (const ModelGeometry& geom :
       {phi3_mini_geometry(), llama3_8b_geometry(), qwen2_7b_geometry(),
        phi3_medium_geometry()}) {
    std::printf("-- %s (%.1fB params, %.0f GB weights FP16) --\n",
                geom.name.c_str(), geom.params() / 1e9,
                geom.weight_bytes_fp16() / 1e9);
    std::printf("%12s  %10s  %16s  %18s\n", "method", "max batch",
                "tok/s @ max", "max ctx @ batch 4");
    for (const MethodRow& m : methods) {
      InferenceConfig cfg;
      cfg.method = m.method;
      cfg.attention.kv_bits = m.bits;
      cfg.prompt = 1024;
      cfg.generate = 512;
      const std::size_t mb = max_batch(dev, geom, cfg);

      cfg.batch = mb == 0 ? 1 : mb;
      const double thpt =
          mb == 0 ? 0.0 : throughput_tokens_per_second(dev, geom, cfg);

      // Longest servable context at batch 4 (binary search over prompt).
      std::size_t lo = 0;
      std::size_t hi = 1 << 22;
      while (hi - lo > 1024) {
        const std::size_t mid = lo + (hi - lo) / 2;
        InferenceConfig probe = cfg;
        probe.batch = 4;
        probe.prompt = mid;
        probe.generate = 0;
        if (memory_use(dev, geom, probe).fits) {
          lo = mid;
        } else {
          hi = mid;
        }
      }

      std::printf("%12s  %10zu  %12.0f t/s  %15zu tok\n", m.label, mb, thpt,
                  lo);
    }
    std::printf("\n");
  }
  std::printf("Note: analytical roofline model calibrated to A100 "
              "datasheet numbers — see src/sim/device.cpp.\n");
  return 0;
}
