// turbo_lint — repo-specific invariant checks a generic linter can't do.
//
// Rules (see docs/STATIC_ANALYSIS.md for rationale and suppression):
//
//   no-raw-assert        assert() / <cassert> are forbidden in src/ and
//                        tools/: release builds compile them out, so a
//                        violated precondition becomes silent corruption.
//                        Use TURBO_CHECK (always on) or TURBO_DCHECK.
//
//   unchecked-i8-cast    static_cast<std::int8_t> outside the checked
//                        helpers (src/common/numeric.h) silently truncates
//                        out-of-range values; use clamp_to_i8 /
//                        saturate_cast<>. Suppress a deliberate narrowing
//                        with `// turbo-lint: allow-narrowing`.
//
//   integer-kernel       a file whose head carries `turbo-lint:
//                        integer-kernel` must stay free of floating-point
//                        arithmetic (FlashQ's decode path is INT-only by
//                        design). Suppress one line with `// turbo-lint:
//                        allow-float`.
//
//   method-shape-check   every KvAttention implementation must validate
//                        its inputs with TURBO_CHECK in prefill(),
//                        decode() and attend() — these are the public
//                        entry points the pipeline drives with
//                        externally-shaped tensors.
//
//   unchecked-cache-append  PagedKvCache::append_token returns false when
//                        the cache is out of pages; discarding that result
//                        (statement position or a `(void)` cast) silently
//                        loses tokens. The two-argument QuantizedKvCache
//                        overload returns void and is exempt. Suppress a
//                        deliberate discard with `// turbo-lint:
//                        allow-unchecked-append`.
//
//   unmirrored-engine-counter  every std::size_t / bool counter in
//                        EngineResult (src/serving/engine.h) must be
//                        mirrored into ServingMetrics and assigned from
//                        `result.<name>` in src/serving/metrics.cpp —
//                        otherwise engine outcomes (timeouts, sheds,
//                        truncation) silently vanish from the reported
//                        metrics. Suppress a deliberately engine-private
//                        field with `// turbo-lint: allow-unmirrored`.
//
//   unfaultable-swap-io  every function declared or defined in
//                        src/serving/swap.{h,cpp} that stores or fetches
//                        a stream (store, store_phantom, fetch, swap_in,
//                        swap_out, promote) must accept a FaultInjector*
//                        — an I/O path the injector cannot reach is a
//                        failure mode no fault-suite seed can exercise.
//                        Suppress a deliberately fault-free signature
//                        with `// turbo-lint: allow-unfaultable`.
//
// Usage: turbo_lint <repo_root>
// Exit status 0 when clean, 1 with one "file:line: [rule] ..." diagnostic
// per violation otherwise.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct SourceFile {
  fs::path path;
  std::string rel;       // path relative to the repo root
  std::string raw;       // original contents (markers live in comments)
  std::string stripped;  // comments and string/char literals blanked
};

struct Violation {
  std::string rel;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

// Blank out comments, string literals and character literals, preserving
// newlines and byte offsets, so rule regexes only ever see real code.
std::string strip_comments_and_strings(const std::string& text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  std::string out = text;
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of_offset(const std::string& text, std::size_t offset) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

std::string raw_line_at(const std::string& text, std::size_t line) {
  std::istringstream in(text);
  std::string current;
  for (std::size_t n = 1; std::getline(in, current); ++n) {
    if (n == line) return current;
  }
  return {};
}

bool line_has_marker(const SourceFile& file, std::size_t line,
                     const std::string& marker) {
  return raw_line_at(file.raw, line).find("turbo-lint: " + marker) !=
         std::string::npos;
}

// First lines of the raw file carry file-level tags.
bool file_has_tag(const SourceFile& file, const std::string& tag) {
  std::istringstream in(file.raw);
  std::string line;
  for (int n = 0; n < 10 && std::getline(in, line); ++n) {
    if (line.find("turbo-lint: " + tag) != std::string::npos) return true;
  }
  return false;
}

void scan_regex(const SourceFile& file, const std::regex& re,
                const std::string& rule, const std::string& message,
                const std::string& allow_marker,
                std::vector<Violation>& out) {
  auto begin =
      std::sregex_iterator(file.stripped.begin(), file.stripped.end(), re);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::size_t line =
        line_of_offset(file.stripped, static_cast<std::size_t>(it->position()));
    if (!allow_marker.empty() && line_has_marker(file, line, allow_marker)) {
      continue;
    }
    out.push_back({file.rel, line, rule, message});
  }
}

// --- rule: no-raw-assert --------------------------------------------------

void check_no_raw_assert(const SourceFile& file, std::vector<Violation>& out) {
  static const std::regex kAssertCall("\\bassert\\s*\\(");
  static const std::regex kAssertInclude(
      "#\\s*include\\s*<(cassert|assert\\.h)>");
  scan_regex(file, kAssertCall, "no-raw-assert",
             "raw assert() compiles out in release builds; use TURBO_CHECK "
             "or TURBO_DCHECK",
             "", out);
  scan_regex(file, kAssertInclude, "no-raw-assert",
             "do not include <cassert>; use common/check.h", "", out);
}

// --- rule: unchecked-i8-cast ----------------------------------------------

void check_unchecked_i8_cast(const SourceFile& file,
                             std::vector<Violation>& out) {
  if (file.rel == "src/common/numeric.h") return;  // home of the helpers
  static const std::regex kI8Cast("static_cast<\\s*(std::)?u?int8_t\\s*>");
  scan_regex(file, kI8Cast, "unchecked-i8-cast",
             "bare 8-bit narrowing cast; use clamp_to_i8 / saturate_cast<> "
             "from common/numeric.h (or annotate with "
             "turbo-lint: allow-narrowing)",
             "allow-narrowing", out);
}

// --- rule: integer-kernel -------------------------------------------------

void check_integer_kernel(const SourceFile& file,
                          std::vector<Violation>& out) {
  if (!file_has_tag(file, "integer-kernel")) return;
  static const std::regex kFpToken(
      "\\b(float|double)\\b|"
      "\\b[0-9]+\\.[0-9]*f?\\b|"
      "\\bstd::(exp|log|sqrt|pow|nearbyint|round|fma)\\b|"
      "\\bexp_neg\\b");
  scan_regex(file, kFpToken, "integer-kernel",
             "floating-point arithmetic in a file tagged integer-kernel "
             "(annotate the line with turbo-lint: allow-float if deliberate)",
             "allow-float", out);
}

// --- rule: unchecked-cache-append -----------------------------------------

// PagedKvCache::append_token (the three-argument, fallible overload)
// reports page exhaustion through its return value. [[nodiscard]] catches
// bare discards at compile time in -Werror builds; this rule also catches
// `(void)`-cast suppressions and guards builds without -Werror.
void check_unchecked_cache_append(const SourceFile& file,
                                  std::vector<Violation>& out) {
  static const std::regex kCall("\\bappend_token\\s*\\(");
  auto begin = std::sregex_iterator(file.stripped.begin(),
                                    file.stripped.end(), kCall);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::size_t match_pos = static_cast<std::size_t>(it->position());
    // Count top-level arguments: only the paged overload takes three.
    std::size_t pos = match_pos + static_cast<std::size_t>(it->length());
    int depth = 1;
    std::size_t args = 1;
    while (pos < file.stripped.size() && depth > 0) {
      const char c = file.stripped[pos];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ',' && depth == 1) ++args;
      ++pos;
    }
    if (args != 3) continue;
    // Statement prefix: everything since the last ';', '{' or '}'.
    std::size_t start = match_pos;
    while (start > 0) {
      const char c = file.stripped[start - 1];
      if (c == ';' || c == '{' || c == '}') break;
      --start;
    }
    const std::string prefix =
        file.stripped.substr(start, match_pos - start);
    // Declarations and definitions name the return type.
    if (std::regex_search(prefix, std::regex("\\bbool\\b"))) continue;
    // Peel the callee chain ("cache.", "this->cache_.", ...) off the end
    // of the prefix; whatever remains is the consuming context.
    std::size_t ctx_end = prefix.size();
    while (ctx_end > 0) {
      const char c = prefix[ctx_end - 1];
      const bool chain =
          std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '.' || c == '-' || c == '>' || c == ':';
      if (!chain) break;
      --ctx_end;
    }
    std::string context = prefix.substr(0, ctx_end);
    while (!context.empty() &&
           std::isspace(static_cast<unsigned char>(context.back())) != 0) {
      context.pop_back();
    }
    const bool void_cast =
        std::regex_search(context, std::regex("\\(\\s*void\\s*\\)\\s*$"));
    if (!context.empty() && !void_cast) continue;  // result is consumed
    const std::size_t line = line_of_offset(file.stripped, match_pos);
    if (line_has_marker(file, line, "allow-unchecked-append")) continue;
    out.push_back(
        {file.rel, line, "unchecked-cache-append",
         "PagedKvCache::append_token result discarded; page exhaustion "
         "must be handled (or annotate with "
         "turbo-lint: allow-unchecked-append)"});
  }
}

// --- rule: method-shape-check ---------------------------------------------

// Extract the body of the function whose qualified name starts at the match
// of `sig_re` in `stripped`; returns false if no definition (declaration
// only) is found.
bool extract_body(const std::string& stripped, const std::regex& sig_re,
                  std::string& body, std::size_t& def_line) {
  auto it = std::sregex_iterator(stripped.begin(), stripped.end(), sig_re);
  for (; it != std::sregex_iterator(); ++it) {
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    // Walk past the parameter list to the matching ')'.
    int depth = 1;  // sig_re consumed the opening '('
    while (pos < stripped.size() && depth > 0) {
      if (stripped[pos] == '(') ++depth;
      if (stripped[pos] == ')') --depth;
      ++pos;
    }
    // Skip qualifiers (const, noexcept, override, whitespace) up to '{' or
    // ';'. A ';' means declaration, not definition — try the next match.
    while (pos < stripped.size() && stripped[pos] != '{' &&
           stripped[pos] != ';') {
      ++pos;
    }
    if (pos >= stripped.size() || stripped[pos] == ';') continue;
    const std::size_t body_begin = pos;
    int braces = 0;
    while (pos < stripped.size()) {
      if (stripped[pos] == '{') ++braces;
      if (stripped[pos] == '}') {
        --braces;
        if (braces == 0) break;
      }
      ++pos;
    }
    body = stripped.substr(body_begin, pos - body_begin + 1);
    def_line = line_of_offset(
        stripped, static_cast<std::size_t>(it->position()));
    return true;
  }
  return false;
}

// --- rule: unmirrored-engine-counter --------------------------------------

// Locate `struct <name> { ... }` in stripped text and return the brace-
// balanced body (including the outer braces) plus the line of the keyword.
bool extract_struct_body(const std::string& stripped, const std::string& name,
                         std::string& body, std::size_t& def_line) {
  const std::regex sig("\\bstruct\\s+" + name + "\\b");
  std::smatch m;
  if (!std::regex_search(stripped, m, sig)) return false;
  std::size_t pos = static_cast<std::size_t>(m.position()) +
                    static_cast<std::size_t>(m.length());
  while (pos < stripped.size() && stripped[pos] != '{' &&
         stripped[pos] != ';') {
    ++pos;
  }
  if (pos >= stripped.size() || stripped[pos] == ';') return false;
  const std::size_t body_begin = pos;
  int braces = 0;
  while (pos < stripped.size()) {
    if (stripped[pos] == '{') ++braces;
    if (stripped[pos] == '}') {
      --braces;
      if (braces == 0) break;
    }
    ++pos;
  }
  body = stripped.substr(body_begin, pos - body_begin + 1);
  def_line = line_of_offset(stripped, static_cast<std::size_t>(m.position()));
  return true;
}

// EngineResult is the engine's ground truth; ServingMetrics is what every
// consumer (CLI, bench tables, tests) actually reads. A counter added to the
// former but not forwarded by metrics.cpp is invisible in every report, so
// the engine can time out or shed requests without anyone noticing.
void check_unmirrored_engine_counters(const std::vector<SourceFile>& files,
                                      std::vector<Violation>& out) {
  const SourceFile* engine_h = nullptr;
  const SourceFile* metrics_h = nullptr;
  const SourceFile* metrics_cpp = nullptr;
  for (const SourceFile& f : files) {
    if (f.rel == "src/serving/engine.h") engine_h = &f;
    if (f.rel == "src/serving/metrics.h") metrics_h = &f;
    if (f.rel == "src/serving/metrics.cpp") metrics_cpp = &f;
  }
  if (engine_h == nullptr) return;  // serving layer not present in this tree

  std::string result_body;
  std::size_t result_line = 0;
  if (!extract_struct_body(engine_h->stripped, "EngineResult", result_body,
                           result_line)) {
    return;
  }
  std::string metrics_body;
  std::size_t metrics_line = 0;
  const bool have_metrics =
      metrics_h != nullptr &&
      extract_struct_body(metrics_h->stripped, "ServingMetrics", metrics_body,
                          metrics_line);

  // Line numbers inside the struct body: offset of the body within the file.
  const std::size_t body_offset = engine_h->stripped.find(result_body);

  static const std::regex kCounterField("\\b(std::size_t|bool)\\s+(\\w+)");
  auto it = std::sregex_iterator(result_body.begin(), result_body.end(),
                                 kCounterField);
  for (; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[2].str();
    const std::size_t line = line_of_offset(
        engine_h->stripped,
        body_offset + static_cast<std::size_t>(it->position()));
    if (line_has_marker(*engine_h, line, "allow-unmirrored")) continue;

    const bool in_metrics =
        have_metrics &&
        std::regex_search(metrics_body,
                          std::regex("\\b" + name + "\\b"));
    const bool assigned =
        metrics_cpp != nullptr &&
        std::regex_search(metrics_cpp->stripped,
                          std::regex("\\bresult\\s*\\.\\s*" + name + "\\b"));
    if (in_metrics && assigned) continue;
    std::string what;
    if (!in_metrics) what = "has no ServingMetrics counterpart";
    if (!assigned) {
      if (!what.empty()) what += " and ";
      what += "is never read from result. in src/serving/metrics.cpp";
    }
    out.push_back(
        {engine_h->rel, line, "unmirrored-engine-counter",
         "EngineResult::" + name + " " + what +
             "; mirror it into ServingMetrics (or annotate with "
             "turbo-lint: allow-unmirrored)"});
  }
}

// --- rule: unfaultable-swap-io --------------------------------------------

// The swap store is the one subsystem whose whole point is surviving
// injected faults; a store/fetch entry point without a FaultInjector*
// parameter is dead to the fault suite. Calls (obj.store(...)) are uses,
// not signatures, and are exempt — only declarations and definitions in
// src/serving/swap.{h,cpp} are checked.
void check_unfaultable_swap_io(const SourceFile& file,
                               std::vector<Violation>& out) {
  if (file.rel.rfind("src/serving/swap.", 0) != 0) return;
  static const std::regex kIoFn(
      "\\b(store_phantom|store|fetch|swap_in|swap_out|promote)\\s*\\(");
  auto begin =
      std::sregex_iterator(file.stripped.begin(), file.stripped.end(), kIoFn);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::size_t match_pos = static_cast<std::size_t>(it->position());
    // Skip member calls: a name preceded by '.' or '->' is a use site.
    std::size_t prev = match_pos;
    while (prev > 0 && std::isspace(static_cast<unsigned char>(
                           file.stripped[prev - 1])) != 0) {
      --prev;
    }
    if (prev > 0 && (file.stripped[prev - 1] == '.' ||
                     (prev > 1 && file.stripped[prev - 2] == '-' &&
                      file.stripped[prev - 1] == '>'))) {
      continue;
    }
    // Walk the parameter list to its matching ')'.
    std::size_t pos = match_pos + static_cast<std::size_t>(it->length());
    const std::size_t params_begin = pos;
    int depth = 1;
    while (pos < file.stripped.size() && depth > 0) {
      if (file.stripped[pos] == '(') ++depth;
      if (file.stripped[pos] == ')') --depth;
      ++pos;
    }
    const std::string params =
        file.stripped.substr(params_begin, pos - params_begin);
    if (params.find("FaultInjector") != std::string::npos) continue;
    const std::size_t line = line_of_offset(file.stripped, match_pos);
    if (line_has_marker(file, line, "allow-unfaultable")) continue;
    out.push_back(
        {file.rel, line, "unfaultable-swap-io",
         (*it)[1].str() +
             " stores or fetches a swap stream but takes no FaultInjector*; "
             "every swap I/O path must be fault-injectable (or annotate "
             "with turbo-lint: allow-unfaultable)"});
  }
}

void check_method_shape_checks(const std::vector<SourceFile>& files,
                               std::vector<Violation>& out) {
  static const std::regex kImplClass(
      "class\\s+(\\w+)[^;{]*:\\s*(?:public\\s+)?KvAttention\\b");
  static const char* kMethods[] = {"prefill", "decode", "attend"};

  for (const SourceFile& file : files) {
    auto it = std::sregex_iterator(file.stripped.begin(),
                                   file.stripped.end(), kImplClass);
    for (; it != std::sregex_iterator(); ++it) {
      const std::string cls = (*it)[1].str();
      if (cls == "KvAttention") continue;
      for (const char* method : kMethods) {
        const std::regex sig(cls + "::" + method + "\\s*\\(");
        bool found = false;
        bool checked = false;
        std::string where_rel;
        std::size_t where_line = 0;
        for (const SourceFile& candidate : files) {
          std::string body;
          std::size_t line = 0;
          if (extract_body(candidate.stripped, sig, body, line)) {
            found = true;
            where_rel = candidate.rel;
            where_line = line;
            checked = body.find("TURBO_CHECK") != std::string::npos;
            break;
          }
        }
        if (!found) {
          // Inline definition inside the class body, or not implemented in
          // the scanned tree; look for `method (...) ... {` in the class's
          // own file as a fallback.
          const std::regex inline_sig(std::string("\\b") + method +
                                      "\\s*\\(");
          std::string body;
          std::size_t line = 0;
          if (extract_body(file.stripped, inline_sig, body, line)) {
            found = true;
            where_rel = file.rel;
            where_line = line;
            checked = body.find("TURBO_CHECK") != std::string::npos;
          }
        }
        if (!found) continue;  // pure declaration; implementation elsewhere
        if (!checked) {
          out.push_back(
              {where_rel, where_line, "method-shape-check",
               cls + "::" + method +
                   " must validate its input shapes with TURBO_CHECK"});
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: turbo_lint <repo_root>\n");
    return 2;
  }
  const fs::path root(argv[1]);
  if (!fs::is_directory(root / "src")) {
    std::fprintf(stderr, "turbo_lint: %s/src is not a directory\n", argv[1]);
    return 2;
  }

  std::vector<SourceFile> files;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      SourceFile f;
      f.path = entry.path();
      f.rel = fs::relative(entry.path(), root).generic_string();
      f.raw = buf.str();
      f.stripped = strip_comments_and_strings(f.raw);
      files.push_back(std::move(f));
    }
  }

  std::vector<Violation> violations;
  for (const SourceFile& f : files) {
    check_no_raw_assert(f, violations);
    check_unchecked_i8_cast(f, violations);
    check_integer_kernel(f, violations);
    check_unchecked_cache_append(f, violations);
    check_unfaultable_swap_io(f, violations);
  }
  check_method_shape_checks(files, violations);
  check_unmirrored_engine_counters(files, violations);

  for (const Violation& v : violations) {
    std::cout << v.rel << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  std::cout << "turbo_lint: " << files.size() << " files scanned, "
            << violations.size() << " violation(s)\n";
  return violations.empty() ? 0 : 1;
}
