// turbo_lint — repo-specific determinism and invariant checks a generic
// linter can't do. v2: a token-stream analysis engine (tools/lint/) with
// a rule registry, machine-readable output and a grandfathering
// baseline. See docs/STATIC_ANALYSIS.md for the full rule catalog.
//
// Usage:
//   turbo_lint [options] <repo_root>
//
//   --json                  machine-readable report on stdout
//   --baseline FILE         baseline file (default:
//                           <root>/tools/turbo_lint_baseline.txt if present)
//   --no-baseline           ignore any baseline file
//   --write-baseline FILE   write current findings as a baseline and exit
//   --list-rules            print the rule catalog and exit
//
// Exit status: 0 clean, 1 violations or stale baseline entries, 2 usage
// or I/O error. Stale baseline entries (grandfathered findings that no
// longer exist) are an error so the baseline can only ever shrink.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/engine.h"

namespace fs = std::filesystem;
namespace lint = turbo::lint;

namespace {

int list_rules() {
  std::size_t n = 0;
  for (const lint::RuleInfo& r : lint::rules()) {
    ++n;
    std::cout << "  " << n << ". " << r.id << "\n       " << r.summary
              << "\n       suppression: "
              << (r.suppression.empty() ? "(none — not suppressible)"
                                        : "// turbo-lint: " + r.suppression)
              << "\n";
  }
  return 0;
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool no_baseline = false;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string root;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--json") {
      json = true;
    } else if (a == "--no-baseline") {
      no_baseline = true;
    } else if (a == "--list-rules") {
      return list_rules();
    } else if (a == "--baseline" && i + 1 < args.size()) {
      baseline_path = args[++i];
    } else if (a == "--write-baseline" && i + 1 < args.size()) {
      write_baseline_path = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "turbo_lint: unknown option '%s'\n", a.c_str());
      return 2;
    } else if (root.empty()) {
      root = a;
    } else {
      std::fprintf(stderr, "turbo_lint: multiple roots given\n");
      return 2;
    }
  }
  if (root.empty()) {
    std::fprintf(stderr,
                 "usage: turbo_lint [--json] [--baseline FILE] "
                 "[--no-baseline] [--write-baseline FILE] [--list-rules] "
                 "<repo_root>\n");
    return 2;
  }
  if (!fs::is_directory(fs::path(root) / "src")) {
    std::fprintf(stderr, "turbo_lint: %s/src is not a directory\n",
                 root.c_str());
    return 2;
  }

  const lint::Project project(lint::load_tree(root));
  std::vector<lint::Finding> findings = lint::run_rules(project);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "turbo_lint: cannot write baseline '%s'\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << lint::format_baseline(findings, project);
    std::fprintf(stderr, "turbo_lint: wrote %zu baseline entr%s to %s\n",
                 findings.size(), findings.size() == 1 ? "y" : "ies",
                 write_baseline_path.c_str());
    return 0;
  }

  // Default baseline: tools/turbo_lint_baseline.txt under the root.
  if (baseline_path.empty() && !no_baseline) {
    const fs::path candidate =
        fs::path(root) / "tools" / "turbo_lint_baseline.txt";
    if (fs::is_regular_file(candidate)) {
      baseline_path = candidate.string();
    }
  }

  std::size_t baselined = 0;
  std::vector<std::string> stale;
  if (!baseline_path.empty() && !no_baseline) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::fprintf(stderr, "turbo_lint: cannot read baseline '%s'\n",
                   baseline_path.c_str());
      return 2;
    }
    const std::size_t before = findings.size();
    findings = lint::apply_baseline(findings, project,
                                    lint::parse_baseline(text), &stale);
    baselined = before - findings.size();
  }

  if (json) {
    std::cout << lint::to_json(findings, project.files().size());
  } else {
    std::cout << lint::to_text(findings);
    std::cout << "turbo_lint: " << project.files().size()
              << " files scanned, " << findings.size() << " violation(s)";
    if (baselined > 0) std::cout << ", " << baselined << " baselined";
    if (!stale.empty()) std::cout << ", " << stale.size() << " stale";
    std::cout << "\n";
  }
  for (const std::string& key : stale) {
    std::fprintf(stderr,
                 "turbo_lint: stale baseline entry %s (finding no longer "
                 "exists — remove it from %s)\n",
                 key.c_str(), baseline_path.c_str());
  }
  return findings.empty() && stale.empty() ? 0 : 1;
}
