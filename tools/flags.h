// Minimal --key value flag parser for the CLI tools (no dependencies).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace turbo::tools {

class Flags {
 public:
  // Parses "--key value" pairs after the subcommand. Exits with a message
  // on malformed input.
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        std::fprintf(stderr, "malformed flag '%s' (expected --key value)\n",
                     key.c_str());
        std::exit(2);
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::string get(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

  long get_int(const std::string& key, long def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::strtol(it->second.c_str(),
                                                   nullptr, 10);
  }

  double get_double(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::strtod(it->second.c_str(),
                                                   nullptr);
  }

  // Report any flag the command did not consume (typo protection).
  void check_consumed(const std::vector<std::string>& known) const {
    for (const auto& [key, value] : values_) {
      bool found = false;
      for (const std::string& k : known) {
        if (k == key) {
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace turbo::tools
