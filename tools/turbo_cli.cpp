// turbo_cli — configurable experiment runner.
//
//   turbo_cli accuracy --model llama3 --task gsm8k --method turbo --bits 4
//   turbo_cli latency  --device a100 --model phi3-medium --method turbo
//                      --bits 3 --batch 4 --ctx 8192 --phase decode --tp 1
//   turbo_cli serve    --rate 6 --duration 60 --method turbo --bits 3
//
// A thin front end over the library so users can sweep configurations
// without writing C++. Every bench binary remains the canonical,
// argument-free reproduction path; this tool is for exploration.
#include <array>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "bench/task_methods.h"
#include "common/check.h"
#include "fleet/chaos.h"
#include "fleet/metrics.h"
#include "fleet/router.h"
#include "model/profile.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/trace.h"
#include "sim/parallel.h"
#include "tasks/retrieval.h"
#include "tools/flags.h"

namespace {

using namespace turbo;
using tools::Flags;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: turbo_cli <accuracy|latency|serve> [--key value ...]\n"
      "  accuracy: --model llama3|qwen2|phi3  --task gsm8k|aqua|bbh\n"
      "            --method fp16|kivi|gear|turbo|turbo-mixed\n"
      "            --bits 2|3|4  --cases N  --seed S\n"
      "  latency:  --device a100|a100-pcie|h100\n"
      "            --model phi3-mini|phi3-medium|llama3|qwen2\n"
      "            --method fp16|kivi|gear|turbo  --bits B  --batch N\n"
      "            --ctx TOKENS  --phase prefill|decode  --tp GPUS\n"
      "  serve:    --rate REQ_PER_S  --duration S  --method ...  --bits B\n"
      "            --device ...  --model ...  --max-batch N  --headroom F\n"
      "            --prefill-chunk TOKENS (0 = monolithic prefill)\n"
      "            --preempt swap|recompute  --fault-seed S\n"
      "            --alloc-fail-p P  --corrupt-p P  --spike-p P --spike-x M\n"
      "            --policy fifo|class  --class-mix I,S,B (fractions, sum 1)\n"
      "            --deadline-ttft I,S,B  --deadline-e2e I,S,B (s, 0 = none)\n"
      "            --degrade 0|1  --degrade-frac F (2-bit head fraction)\n"
      "            --swap-tiers 1|2 (host | host+disk)\n"
      "            --disk-bandwidth GB_PER_S (disk tier link)\n"
      "            --swap-cap HOST,DISK (GB per tier, 0 = unbounded)\n"
      "            --tier-fail-p P | P_HOST,P_DISK (unavailable prob)\n"
      "            --tier-retry-budget N (fetch attempts per tier)\n"
      "            --replicas N (data-parallel fleet; 1 = single engine)\n"
      "            --route rr|lop|class|affinity (fleet routing policy)\n"
      "            --replica-outage IDX:START,END[;IDX:START,END...]\n"
      "                          (repeat an IDX for a flapping replica)\n"
      "            --replica-crash IDX:AT[,RESTART_DELAY][;IDX:AT...]\n"
      "            --snapshot-interval S (crash-consistent snapshots;\n"
      "                          0 = recover by recompute only)\n"
      "            --snapshot-unavail-p P  --snapshot-corrupt-p P\n"
      "            --chaos-seed N (seeded chaos schedule; 0 = off)\n"
      "            --chaos-intensity F (chaos scale in (0,1])\n"
      "            --migrate-corrupt-p P (per-migration corruption prob)\n"
      "            --interconnect GB_PER_S (replica-to-replica link)\n"
      "            --failover-budget N (migrations per request)\n"
      "            --disagg P:D (P prefill + D decode replicas; also PpDd;\n"
      "                          overrides --replicas)\n"
      "            --decode-watermark F (decode-pool backpressure threshold)\n"
      "            --handoff-fail-p P (transient handoff-send fault prob)\n"
      "            --handoff-retry-budget N (handoff send attempts)\n"
      "            --sessions TURNS (multi-turn sessions; 1 = single-turn)\n"
      "            --shared-prefix TOKENS (shared system-prompt length)\n"
      "            --shared-frac F (fraction of sessions carrying it)\n"
      "            --session-gap S (think time between turns)\n"
      "            --agentic-frac F (fraction of agentic tool loops)\n");
  std::exit(2);
}

model::ModelProfile profile_by_name(const std::string& name) {
  if (name == "llama3") return model::llama3_8b_profile();
  if (name == "qwen2") return model::qwen2_7b_profile();
  if (name == "phi3") return model::phi3_mini_profile();
  std::fprintf(stderr, "unknown model profile '%s'\n", name.c_str());
  std::exit(2);
}

sim::ModelGeometry geometry_by_name(const std::string& name) {
  if (name == "phi3-mini") return sim::phi3_mini_geometry();
  if (name == "phi3-medium") return sim::phi3_medium_geometry();
  if (name == "llama3") return sim::llama3_8b_geometry();
  if (name == "qwen2") return sim::qwen2_7b_geometry();
  std::fprintf(stderr, "unknown model geometry '%s'\n", name.c_str());
  std::exit(2);
}

sim::DeviceSpec device_by_name(const std::string& name) {
  if (name == "a100") return sim::a100_sxm_80gb();
  if (name == "a100-pcie") return sim::a100_pcie_40gb();
  if (name == "h100") return sim::h100_sxm_80gb();
  std::fprintf(stderr, "unknown device '%s'\n", name.c_str());
  std::exit(2);
}

sim::AttnMethod sim_method_by_name(const std::string& name) {
  if (name == "fp16") return sim::AttnMethod::kFlashFp16;
  if (name == "kivi") return sim::AttnMethod::kKiviFlash;
  if (name == "gear") return sim::AttnMethod::kGearFlash;
  if (name == "turbo") return sim::AttnMethod::kTurbo;
  std::fprintf(stderr, "unknown method '%s'\n", name.c_str());
  std::exit(2);
}

int run_accuracy(const Flags& flags) {
  flags.check_consumed({"model", "task", "method", "bits", "cases", "seed"});
  const model::ModelProfile profile =
      profile_by_name(flags.get("model", "llama3"));
  const std::string task_name = flags.get("task", "gsm8k");
  tasks::RetrievalConfig task =
      task_name == "aqua"  ? tasks::aqua_proxy(profile)
      : task_name == "bbh" ? tasks::bbh_proxy(profile)
                           : tasks::gsm8k_proxy(profile);
  task.n_cases = static_cast<std::size_t>(flags.get_int("cases", 32));
  task.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<long>(task.seed)));

  const std::string method = flags.get("method", "turbo");
  const BitWidth bits = bit_width_from_int(
      static_cast<int>(flags.get_int("bits", 4)));
  bench::NamedFactory f =
      method == "fp16"   ? bench::fp16_method()
      : method == "kivi" ? bench::kivi_method(bits, profile.head_dim)
      : method == "gear" ? bench::gear_method(bits, profile.head_dim)
      : method == "turbo-mixed"
          ? bench::turbo_mixed_method(task, profile.heads / 2)
          : bench::turbo_method(bits);

  const tasks::TaskResult r = tasks::run_retrieval(task, f.factory);
  std::printf("%s / %s / %s (%s-bit): accuracy %.1f%% over %zu cases, "
              "KV %.1f bytes/token\n",
              profile.name.c_str(), task.name.c_str(), f.label.c_str(),
              f.bits.c_str(), 100.0 * r.accuracy, r.cases,
              r.kv_bytes_per_token);
  return 0;
}

int run_latency(const Flags& flags) {
  flags.check_consumed(
      {"device", "model", "method", "bits", "batch", "ctx", "phase", "tp"});
  const sim::DeviceSpec dev = device_by_name(flags.get("device", "a100"));
  const sim::ModelGeometry geom =
      geometry_by_name(flags.get("model", "phi3-medium"));
  sim::InferenceConfig cfg;
  cfg.method = sim_method_by_name(flags.get("method", "turbo"));
  cfg.attention.kv_bits = flags.get_double("bits", 4.0);
  cfg.batch = static_cast<std::size_t>(flags.get_int("batch", 4));
  const std::size_t ctx =
      static_cast<std::size_t>(flags.get_int("ctx", 8192));
  cfg.prompt = ctx;
  sim::TensorParallelConfig tp;
  tp.gpus = static_cast<std::size_t>(flags.get_int("tp", 1));

  if (!sim::memory_use_tp(dev, geom, cfg, tp).fits) {
    std::printf("%s / %s: OOM at batch %zu, ctx %zu (tp=%zu)\n",
                geom.name.c_str(), dev.name.c_str(), cfg.batch, ctx,
                tp.gpus);
    return 1;
  }
  const std::string phase = flags.get("phase", "decode");
  const sim::E2EBreakdown b =
      phase == "prefill"
          ? sim::prefill_breakdown_tp(dev, geom, cfg, tp)
          : sim::decode_step_breakdown_tp(dev, geom, cfg, ctx, tp);
  std::printf("%s %s on %s (tp=%zu, batch %zu, ctx %zu): %.3f ms\n",
              phase.c_str(), geom.name.c_str(), dev.name.c_str(), tp.gpus,
              cfg.batch, ctx, b.total() * 1e3);
  std::printf("  linear %.3f ms | attn matmul %.3f | softmax %.3f | "
              "kv io %.3f | dequant %.3f | other %.3f\n",
              b.linear * 1e3, b.attn_matmul * 1e3, b.attn_softmax * 1e3,
              b.attn_kv_io * 1e3, b.attn_dequant * 1e3,
              b.attn_other * 1e3);
  return 0;
}

// Parse "a,b" into a per-tier pair (host, disk).
std::array<double, 2> parse_pair(const std::string& text, const char* flag) {
  const std::size_t comma = text.find(',');
  if (comma == std::string::npos || text.find(',', comma + 1) !=
                                        std::string::npos) {
    std::fprintf(stderr, "--%s wants two comma-separated values\n", flag);
    std::exit(2);
  }
  try {
    return {std::stod(text.substr(0, comma)),
            std::stod(text.substr(comma + 1))};
  } catch (const std::exception&) {
    std::fprintf(stderr, "--%s: bad number in '%s'\n", flag, text.c_str());
    std::exit(2);
  }
}

// Parse "--disagg P:D" — also the compact "PpDd" form (e.g. 2p2d) —
// into {prefill replicas, decode replicas}.
std::array<std::size_t, 2> parse_disagg(const std::string& text) {
  long p = -1;
  long d = -1;
  try {
    std::size_t sep = text.find(':');
    if (sep != std::string::npos) {
      p = std::stol(text.substr(0, sep));
      d = std::stol(text.substr(sep + 1));
    } else {
      sep = text.find('p');
      const std::size_t tail = text.find('d', sep + 1);
      if (sep != std::string::npos && tail != std::string::npos &&
          tail == text.size() - 1) {
        p = std::stol(text.substr(0, sep));
        d = std::stol(text.substr(sep + 1, tail - sep - 1));
      }
    }
  } catch (const std::exception&) {
    p = -1;
  }
  if (p < 1 || d < 1) {
    std::fprintf(stderr,
                 "--disagg wants P:D or PpDd with P, D >= 1 (got '%s')\n",
                 text.c_str());
    std::exit(2);
  }
  return {static_cast<std::size_t>(p), static_cast<std::size_t>(d)};
}

// Parse "a,b,c" into a per-class triple (interactive, standard, batch).
std::array<double, serving::kServiceClassCount> parse_triple(
    const std::string& text, const char* flag) {
  std::array<double, serving::kServiceClassCount> out = {0.0, 0.0, 0.0};
  std::size_t pos = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::size_t comma = text.find(',', pos);
    const bool last = i + 1 == out.size();
    if (last != (comma == std::string::npos)) {
      std::fprintf(stderr, "--%s wants three comma-separated values\n", flag);
      std::exit(2);
    }
    try {
      out[i] = std::stod(text.substr(pos, comma - pos));
    } catch (const std::exception&) {
      std::fprintf(stderr, "--%s: bad number in '%s'\n", flag, text.c_str());
      std::exit(2);
    }
    pos = comma + 1;
  }
  return out;
}

int run_serve(const Flags& flags) {
  flags.check_consumed({"rate", "duration", "method", "bits", "seed",
                        "device", "model", "max-batch", "headroom",
                        "prefill-chunk", "preempt", "fault-seed",
                        "alloc-fail-p", "corrupt-p", "spike-p", "spike-x",
                        "policy", "class-mix", "deadline-ttft",
                        "deadline-e2e", "degrade", "degrade-frac",
                        "swap-tiers", "disk-bandwidth", "swap-cap",
                        "tier-fail-p", "tier-retry-budget", "replicas",
                        "route", "replica-outage", "migrate-corrupt-p",
                        "interconnect", "failover-budget", "sessions",
                        "shared-prefix", "shared-frac", "session-gap",
                        "agentic-frac", "disagg", "decode-watermark",
                        "handoff-fail-p", "handoff-retry-budget",
                        "replica-crash", "snapshot-interval",
                        "snapshot-unavail-p", "snapshot-corrupt-p",
                        "chaos-seed", "chaos-intensity"});
  serving::TraceConfig trace_cfg;
  trace_cfg.arrival_rate = flags.get_double("rate", 4.0);
  trace_cfg.duration_s = flags.get_double("duration", 60.0);
  trace_cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::string mix = flags.get("class-mix", "");
  if (!mix.empty()) trace_cfg.class_mix = parse_triple(mix, "class-mix");
  const std::string dl_ttft = flags.get("deadline-ttft", "");
  if (!dl_ttft.empty()) {
    trace_cfg.ttft_deadline_s = parse_triple(dl_ttft, "deadline-ttft");
  }
  const std::string dl_e2e = flags.get("deadline-e2e", "");
  if (!dl_e2e.empty()) {
    trace_cfg.e2e_deadline_s = parse_triple(dl_e2e, "deadline-e2e");
  }
  // Session workload knobs (all defaults preserve the legacy trace).
  const long turns = flags.get_int("sessions", 1);
  if (turns < 1) {
    std::fprintf(stderr, "--sessions must be >= 1\n");
    std::exit(2);
  }
  trace_cfg.session_turns = static_cast<std::size_t>(turns);
  trace_cfg.shared_prefix_tokens =
      static_cast<std::size_t>(flags.get_int("shared-prefix", 0));
  trace_cfg.shared_prefix_fraction = flags.get_double("shared-frac", 1.0);
  trace_cfg.session_gap_s = flags.get_double("session-gap", 0.0);
  trace_cfg.agentic_fraction = flags.get_double("agentic-frac", 0.0);

  serving::EngineConfig engine;
  engine.device = device_by_name(flags.get("device", "a100"));
  engine.geometry = geometry_by_name(flags.get("model", "phi3-medium"));
  engine.method = sim_method_by_name(flags.get("method", "turbo"));
  engine.attention.kv_bits = flags.get_double("bits", 3.0);
  engine.max_batch =
      static_cast<std::size_t>(flags.get_int("max-batch", 256));
  engine.memory_headroom = flags.get_double("headroom", 0.9);
  const long chunk = flags.get_int("prefill-chunk", 512);
  if (chunk < 0) {
    std::fprintf(stderr, "--prefill-chunk must be >= 0 (0 = monolithic)\n");
    std::exit(2);
  }
  engine.prefill_chunk_tokens = static_cast<std::size_t>(chunk);
  const std::string preempt = flags.get("preempt", "swap");
  if (preempt == "recompute") {
    engine.preempt_mode = serving::PreemptMode::kRecompute;
  } else if (preempt == "swap") {
    engine.preempt_mode = serving::PreemptMode::kSwap;
  } else {
    std::fprintf(stderr, "unknown preempt mode '%s'\n", preempt.c_str());
    std::exit(2);
  }
  const std::string policy = flags.get("policy", "class");
  if (policy == "fifo") {
    engine.policy = serving::SchedPolicy::kFifo;
  } else if (policy == "class") {
    engine.policy = serving::SchedPolicy::kClassAware;
  } else {
    std::fprintf(stderr, "unknown policy '%s'\n", policy.c_str());
    std::exit(2);
  }
  engine.degrade.enabled = flags.get_int("degrade", 0) != 0;
  engine.degrade.two_bit_head_fraction = flags.get_double("degrade-frac", 1.0);
  engine.faults.seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  engine.faults.page_alloc_failure_prob =
      flags.get_double("alloc-fail-p", 0.0);
  engine.faults.stream_corruption_prob = flags.get_double("corrupt-p", 0.0);
  engine.faults.swap_spike_prob = flags.get_double("spike-p", 0.0);
  engine.faults.swap_spike_multiplier = flags.get_double("spike-x", 8.0);

  // Tiered swap store: tier layout, per-tier capacity and fault profile.
  const long tiers = flags.get_int("swap-tiers", 2);
  if (tiers < 1 || tiers > 2) {
    std::fprintf(stderr, "--swap-tiers must be 1 (host) or 2 (host+disk)\n");
    std::exit(2);
  }
  engine.swap.tiers = static_cast<std::size_t>(tiers);
  const double disk_gbps = flags.get_double("disk-bandwidth", 0.0);
  if (disk_gbps > 0.0) engine.device.disk_bandwidth = disk_gbps * 1e9;
  const std::string caps = flags.get("swap-cap", "");
  if (!caps.empty()) {
    const auto pair = parse_pair(caps, "swap-cap");
    engine.swap.host_capacity_bytes =
        static_cast<std::size_t>(pair[0] * 1e9);
    engine.swap.disk_capacity_bytes =
        static_cast<std::size_t>(pair[1] * 1e9);
  }
  const std::string fail_p = flags.get("tier-fail-p", "");
  if (!fail_p.empty()) {
    if (fail_p.find(',') == std::string::npos) {
      double p = 0.0;
      try {
        p = std::stod(fail_p);
      } catch (const std::exception&) {
        std::fprintf(stderr, "--tier-fail-p: bad number '%s'\n",
                     fail_p.c_str());
        std::exit(2);
      }
      for (std::size_t t = 0; t < engine.swap.tiers; ++t) {
        engine.faults.tiers[t].unavailable_prob = p;
      }
    } else {
      const auto pair = parse_pair(fail_p, "tier-fail-p");
      engine.faults.tiers[0].unavailable_prob = pair[0];
      engine.faults.tiers[1].unavailable_prob = pair[1];
    }
  }
  engine.swap.health.retry_budget =
      static_cast<std::size_t>(flags.get_int("tier-retry-budget", 2));

  // Fleet knobs: replica count, routing policy, deterministic outage
  // windows and the migration fault/interconnect model (src/fleet).
  long replicas = flags.get_int("replicas", 1);
  // Disaggregation: "--disagg P:D" builds a fleet of P prefill-only plus
  // D decode replicas, overriding --replicas.
  const std::string disagg = flags.get("disagg", "");
  std::size_t prefill_replicas = 0;
  if (!disagg.empty()) {
    const auto pd = parse_disagg(disagg);
    prefill_replicas = pd[0];
    replicas = static_cast<long>(pd[0] + pd[1]);
  }
  if (replicas < 1 ||
      static_cast<std::size_t>(replicas) > turbo::kMaxReplicas) {
    std::fprintf(stderr, "--replicas must be in [1, %zu]\n",
                 turbo::kMaxReplicas);
    std::exit(2);
  }
  engine.faults.migration_corruption_prob =
      flags.get_double("migrate-corrupt-p", 0.0);
  engine.faults.handoff_transient_prob =
      flags.get_double("handoff-fail-p", 0.0);
  const std::string outages = flags.get("replica-outage", "");
  for (std::size_t pos = 0; pos < outages.size();) {
    std::size_t end = outages.find(';', pos);
    if (end == std::string::npos) end = outages.size();
    const std::string seg = outages.substr(pos, end - pos);
    const std::size_t colon = seg.find(':');
    const std::size_t comma = seg.find(',', colon + 1);
    long idx = -1;
    double start = 0.0;
    double stop = 0.0;
    bool ok = colon != std::string::npos && comma != std::string::npos;
    if (ok) {
      try {
        idx = std::stol(seg.substr(0, colon));
        start = std::stod(seg.substr(colon + 1, comma - colon - 1));
        stop = std::stod(seg.substr(comma + 1));
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok || idx < 0 || idx >= replicas || stop <= start) {
      std::fprintf(stderr,
                   "--replica-outage wants IDX:START,END[;...] with IDX < "
                   "--replicas and END > START (got '%s')\n",
                   seg.c_str());
      std::exit(2);
    }
    // Repeated segments for one index accumulate windows: a flapping
    // replica goes down, revives, and goes down again.
    engine.faults.replicas[static_cast<std::size_t>(idx)].add_outage(start,
                                                                     stop);
    pos = end + 1;
  }

  // Abrupt crashes with warm restart: IDX:AT[,RESTART_DELAY][;...].
  const std::string crashes = flags.get("replica-crash", "");
  for (std::size_t pos = 0; pos < crashes.size();) {
    std::size_t end = crashes.find(';', pos);
    if (end == std::string::npos) end = crashes.size();
    const std::string seg = crashes.substr(pos, end - pos);
    const std::size_t colon = seg.find(':');
    long idx = -1;
    double at = 0.0;
    double delay = 0.0;
    bool ok = colon != std::string::npos;
    if (ok) {
      try {
        idx = std::stol(seg.substr(0, colon));
        const std::size_t comma = seg.find(',', colon + 1);
        if (comma == std::string::npos) {
          at = std::stod(seg.substr(colon + 1));
        } else {
          at = std::stod(seg.substr(colon + 1, comma - colon - 1));
          delay = std::stod(seg.substr(comma + 1));
        }
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok || idx < 0 || idx >= replicas || at <= 0.0 || delay < 0.0) {
      std::fprintf(stderr,
                   "--replica-crash wants IDX:AT[,RESTART_DELAY][;...] with "
                   "IDX < --replicas and AT > 0 (got '%s')\n",
                   seg.c_str());
      std::exit(2);
    }
    engine.faults.replicas[static_cast<std::size_t>(idx)].crash_at_s = at;
    engine.faults.replicas[static_cast<std::size_t>(idx)].restart_delay_s =
        delay;
    pos = end + 1;
  }

  engine.faults.snapshot_unavailable_prob =
      flags.get_double("snapshot-unavail-p", 0.0);
  engine.faults.snapshot_corruption_prob =
      flags.get_double("snapshot-corrupt-p", 0.0);
  const double snapshot_interval = flags.get_double("snapshot-interval", 0.0);
  const std::uint64_t chaos_seed =
      static_cast<std::uint64_t>(flags.get_int("chaos-seed", 0));
  const double chaos_intensity = flags.get_double("chaos-intensity", 0.5);

  const auto trace = serving::generate_trace(trace_cfg);

  if (replicas > 1 || !outages.empty() || !crashes.empty() ||
      snapshot_interval > 0.0 || chaos_seed != 0) {
    fleet::FleetConfig fc;
    fc.engine = engine;
    fc.replicas = static_cast<std::size_t>(replicas);
    const std::string route = flags.get("route", "class");
    if (route == "rr") {
      fc.route = fleet::RoutePolicy::kRoundRobin;
    } else if (route == "lop") {
      fc.route = fleet::RoutePolicy::kLeastOutstandingPages;
    } else if (route == "class") {
      fc.route = fleet::RoutePolicy::kClassAware;
    } else if (route == "affinity") {
      fc.route = fleet::RoutePolicy::kAffinity;
    } else {
      std::fprintf(stderr, "unknown route policy '%s'\n", route.c_str());
      std::exit(2);
    }
    fc.interconnect_bandwidth =
        flags.get_double("interconnect", 64.0) * 1e9;
    fc.failover_budget =
        static_cast<std::size_t>(flags.get_int("failover-budget", 2));
    fc.prefill_replicas = prefill_replicas;
    fc.decode_watermark = flags.get_double("decode-watermark", 0.90);
    fc.handoff_retry_budget =
        static_cast<std::size_t>(flags.get_int("handoff-retry-budget", 3));
    fc.snapshot_interval_s = snapshot_interval;
    if (chaos_seed != 0) {
      // One deterministic disaster schedule drawn from the chaos seed:
      // crashes, flapping outages, tier death, transfer corruption and
      // allocation faults, composed over the trace's duration.
      fleet::apply_chaos(fc, chaos_seed, chaos_intensity,
                         trace_cfg.duration_s);
      std::printf("chaos: seed %llu, intensity %.2f over %.0f s\n",
                  static_cast<unsigned long long>(chaos_seed),
                  chaos_intensity, trace_cfg.duration_s);
    }
    const fleet::FleetResult fr = fleet::run_fleet(fc, trace);
    const fleet::ChaosAudit audit = fleet::audit_fleet(fr, trace.size());
    const fleet::FleetMetrics fm = fleet::summarize_fleet(fr);
    std::printf("%zu requests @ %.1f req/s over %zu replicas (%s): "
                "%.0f tok/s, TTFT p50/p99 %.2f/%.2f s, rejected %zu, "
                "timed-out %zu, shed %zu\n",
                trace.size(), trace_cfg.arrival_rate, fm.replica_count,
                fleet::route_policy_name(fc.route),
                fm.fleet.output_tokens_per_s, fm.fleet.ttft_p50,
                fm.fleet.ttft_p99, fm.fleet.rejected, fm.fleet.timed_out,
                fm.fleet.shed);
    for (std::size_t c = 0; c < serving::kServiceClassCount; ++c) {
      const serving::ClassBreakdown& cb = fm.fleet.by_class[c];
      if (cb.requests == 0) continue;
      std::printf("  %-11s %4zu req: %zu done, %zu timed-out, %zu shed, "
                  "TTFT p99 %.2f s",
                  serving::service_class_name(
                      static_cast<serving::ServiceClass>(c)),
                  cb.requests, cb.completed, cb.timed_out, cb.shed,
                  cb.ttft_p99);
      if (cb.deadline_requests > 0) {
        std::printf(", TTFT-SLO %.1f%%", 100.0 * cb.ttft_attainment);
      }
      std::printf("\n");
    }
    std::printf("  fleet: %zu outages, %zu drained, %zu migrations "
                "(%.2f GB, %.3f s on the wire), %zu corrupt, %zu "
                "recomputed, %zu over budget, %zu rerouted\n",
                fm.replica_outages, fm.failover_drains, fm.migrations,
                fm.migrated_gb, fm.migration_stall_s,
                fm.migration_corruptions, fm.migration_recomputes,
                fm.migration_budget_exhausted, fm.rerouted_waiting);
    if (fm.prefill_replica_count > 0) {
      std::printf("  disagg %zup%zud: %zu handoffs (%.2f GB, %.3f s on "
                  "the wire), %zu retries, %zu corrupt, %zu recomputed, "
                  "%zu over budget, %zu role fallbacks, %zu backpressure "
                  "deferrals\n",
                  fm.prefill_replica_count,
                  fm.replica_count - fm.prefill_replica_count, fm.handoffs,
                  fm.handoff_gb, fm.handoff_stall_s, fm.handoff_retries,
                  fm.handoff_corruptions, fm.handoff_recomputes,
                  fm.handoff_budget_exhausted, fm.role_fallback_prefills,
                  fm.backpressure_deferrals);
    }
    if (fc.route == fleet::RoutePolicy::kAffinity) {
      std::printf("  affinity: %zu hits, %zu misses, %zu prefix-hit "
                  "tokens\n",
                  fm.affinity_hits, fm.affinity_misses,
                  fm.fleet.prefix_hit_tokens);
    }
    if (fm.fleet.replica_crashes > 0 || fc.snapshot_interval_s > 0.0) {
      std::printf("  crash recovery: %zu crashes, %zu snapshots written "
                  "(%.2f MB), %zu restores (%zu corrupt), %zu requests "
                  "restored (%zu tokens replayed), %zu recomputed from "
                  "prompt, %zu dedupe drops\n",
                  fm.fleet.replica_crashes, fm.fleet.snapshots_written,
                  static_cast<double>(fm.fleet.snapshot_bytes) / 1e6,
                  fm.fleet.snapshot_restores, fm.fleet.snapshot_corruptions,
                  fm.fleet.restored_requests, fm.fleet.replayed_tokens,
                  fm.fleet.crash_recomputes, fm.fleet.dedupe_drops);
    }
    for (std::size_t i = 0; i < fm.replicas.size(); ++i) {
      const serving::ServingMetrics& rm = fm.replicas[i];
      // Entries past replica_count are crashed incarnations: their
      // pre-crash terminal requests, reported separately from the
      // replacement engine that finished the run on that slot.
      if (i < fm.replica_count) {
        std::printf("    replica %zu: ", i);
      } else {
        std::printf("    crashed incarnation %zu: ",
                    i - fm.replica_count);
      }
      std::printf("%zu done, %zu timed-out, %zu shed, %zu preemptions, "
                  "TTFT p99 %.2f s\n",
                  rm.completed, rm.timed_out, rm.shed, rm.preemptions,
                  rm.ttft_p99);
    }
    if (chaos_seed != 0 || !audit.ok) {
      if (audit.ok) {
        std::printf("  chaos audit: OK — %zu requests, every invariant "
                    "held\n",
                    trace.size());
      } else {
        for (const std::string& f : audit.failures) {
          std::printf("  chaos audit FAILED: %s\n", f.c_str());
        }
        return 1;
      }
    }
    if (fm.hit_time_limit) {
      std::printf("  WARNING: simulation time limit hit with %zu requests "
                  "unfinished — results are truncated, not clean\n",
                  fm.fleet.unfinished);
    }
    return 0;
  }

  const serving::ServingMetrics m =
      serving::summarize(serving::run_engine(engine, trace));
  std::printf("%zu requests @ %.1f req/s: %.0f tok/s, TTFT p50/p99 "
              "%.2f/%.2f s, TPOT p50 %.0f ms, peak batch %zu, rejected "
              "%zu, timed-out %zu, shed %zu\n",
              trace.size(), trace_cfg.arrival_rate, m.output_tokens_per_s,
              m.ttft_p50, m.ttft_p99, m.tpot_p50 * 1e3, m.peak_batch,
              m.rejected, m.timed_out, m.shed);
  for (std::size_t c = 0; c < serving::kServiceClassCount; ++c) {
    const serving::ClassBreakdown& cb = m.by_class[c];
    if (cb.requests == 0) continue;
    std::printf("  %-11s %4zu req: %zu done, %zu timed-out, %zu shed, "
                "TTFT p99 %.2f s",
                serving::service_class_name(
                    static_cast<serving::ServiceClass>(c)),
                cb.requests, cb.completed, cb.timed_out, cb.shed,
                cb.ttft_p99);
    if (cb.deadline_requests > 0) {
      std::printf(", TTFT-SLO %.1f%%", 100.0 * cb.ttft_attainment);
    }
    std::printf("\n");
  }
  if (engine.degrade.enabled) {
    std::printf("  degrade: %zu escalations / %zu de-escalations, "
                "%zu degraded admissions (min %.1f-bit KV, rmse proxy "
                "%.4f), %zu degraded iterations\n",
                m.ladder_escalations, m.ladder_deescalations,
                m.degraded_admissions, m.min_kv_bits, m.degrade_rmse_proxy,
                m.degraded_iterations);
  }
  if (m.hit_time_limit) {
    std::printf("  WARNING: simulation time limit hit with %zu requests "
                "unfinished — results are truncated, not clean\n",
                m.unfinished);
  }
  std::printf("  pressure: preemptions %zu (swap %zu, recompute %zu), "
              "swap-ins %zu, swapped %.2f/%.2f GB out/in, stall %.2f s, "
              "recomputed %zu tok\n",
              m.preemptions, m.preempted_swap, m.preempted_recompute,
              m.swap_ins, m.swap_out_gb, m.swap_in_gb, m.swap_stall_s,
              m.recomputed_tokens);
  if (trace_cfg.shared_prefix_tokens > 0 || trace_cfg.session_turns > 1 ||
      trace_cfg.agentic_fraction > 0.0) {
    std::printf("  prefix: %zu hits (%zu tok attached over %zu pages), "
                "%zu tok prefilled, %zu retained-page reclaims, peak "
                "referenced pages %zu\n",
                m.prefix_hit_requests, m.prefix_hit_tokens,
                m.prefix_pages_attached, m.prefilled_tokens,
                m.retained_pages_reclaimed, m.peak_referenced_pages);
  }
  if (engine.faults.enabled()) {
    std::printf("  faults: alloc failures %zu, degraded steps %zu, "
                "checksum failures %zu, recoveries %zu, worst-case "
                "preemptions/request %zu\n",
                m.injected_alloc_failures, m.degraded_steps,
                m.checksum_failures, m.recoveries,
                m.max_preemptions_single_request);
  }
  if (engine.preempt_mode == serving::PreemptMode::kSwap) {
    std::printf("  tiers: %zu used, demotions %zu, promotions %zu, "
                "failovers %zu, retries %zu (stall %.3f s), blacklists "
                "%zu, recompute fallbacks %zu unavailable / %zu overflow\n",
                m.swap_tiers_used, m.tier_demotions, m.tier_promotions,
                m.tier_failovers, m.tier_fetch_retries, m.tier_retry_stall_s,
                m.tier_blacklists, m.swap_unavailable_recomputes,
                m.swap_overflow_recomputes);
    static const char* kTierNames[] = {"host", "disk", "tier2", "tier3"};
    for (std::size_t t = 0; t < engine.swap.tiers && t < turbo::kMaxSwapTiers;
         ++t) {
      const auto& tc = m.tier_stats[t];
      std::printf("    %-5s stores %zu, hits %zu, demotions-in %zu, "
                  "failures %zu\n",
                  kTierNames[t], tc.stores, tc.hits, tc.demotions_in,
                  tc.failures);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Flags flags(argc, argv, 2);
  // Precondition failures (bad flag values reaching a TURBO_CHECK) should
  // read as a CLI error, not an uncaught-exception abort.
  try {
    if (cmd == "accuracy") return run_accuracy(flags);
    if (cmd == "latency") return run_latency(flags);
    if (cmd == "serve") return run_serve(flags);
  } catch (const turbo::CheckError& e) {
    std::cerr << "turbo_cli: " << e.what() << "\n";
    return 1;
  }
  usage();
}
