#!/usr/bin/env bash
# Full correctness matrix for the TurboAttention tree.
#
#   tools/check.sh            # run everything
#   tools/check.sh release    # just the Release build + tests
#   tools/check.sh asan       # just the ASan+UBSan build + tests
#   tools/check.sh tsan       # just the ThreadSanitizer build + tests
#   tools/check.sh fault      # fault-injection suite (ctest -L fault) in
#                             # both builds; checks Release and ASan agree
#   tools/check.sh serving    # serving/scheduler suite (ctest -L serving)
#                             # in both builds (chunked prefill, metrics)
#   tools/check.sh slo        # SLO/overload-control suite (ctest -L slo)
#                             # in both builds (classes, deadlines, ladder)
#   tools/check.sh tier       # tiered-swap suite (ctest -L tier) in both
#                             # builds (placement, failover, blacklist)
#   tools/check.sh fleet      # fleet-router suite (ctest -L fleet) in all
#                             # three builds (routing, outage drain,
#                             # KV-migration failover)
#   tools/check.sh prefix     # prefix-sharing suite (ctest -L prefix) in
#                             # all three builds (radix index, CoW attach,
#                             # session traces, retained-pool reclaim)
#   tools/check.sh disagg     # disaggregation suite (ctest -L disagg) in
#                             # all three builds (role split, prefill->
#                             # decode handoff, backpressure, degrade)
#   tools/check.sh chaos      # crash-recovery suite (ctest -L chaos) in
#                             # all three builds (crash faults, snapshot
#                             # restore, chaos harness) plus a cross-lane
#                             # diff of a seeded chaos run
#   tools/check.sh lint       # just turbo_lint
#   tools/check.sh tidy       # just clang-tidy (skipped when not installed)
#
# Exits non-zero on the first failing stage. Stages that need a tool the
# machine does not have (clang-tidy) are reported as SKIP, not failure.
set -u

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
STAGES=("${@:-all}")
FAILED=0

for s in "${STAGES[@]}"; do
  case "$s" in
    all|release|asan|tsan|fault|serving|slo|tier|fleet|prefix|disagg|chaos|lint|tidy) ;;
    *)
      echo "check.sh: unknown stage '$s' (expected: release asan tsan fault serving slo tier fleet prefix disagg chaos lint tidy)" >&2
      exit 2
      ;;
  esac
done

want() {
  local stage="$1"
  for s in "${STAGES[@]}"; do
    if [[ "$s" == "all" || "$s" == "$stage" ]]; then return 0; fi
  done
  return 1
}

banner() { printf '\n==== %s ====\n' "$1"; }

run_release() {
  banner "release: -O2 -Werror build + ctest"
  cmake --preset release || return 1
  cmake --build --preset release -j "$JOBS" || return 1
  ctest --preset release || return 1
}

run_asan() {
  banner "asan: -fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --preset debug-asan-ubsan || return 1
  cmake --build --preset debug-asan-ubsan -j "$JOBS" || return 1
  ctest --preset debug-asan-ubsan || return 1
}

run_tsan() {
  banner "tsan: -fsanitize=thread -fno-sanitize-recover=all"
  # Today's tree is single-threaded, so this lane is a tripwire: the
  # moment the kernel thread pool lands (ROADMAP), any unsynchronized
  # shared state fails CI instead of flaking in production.
  cmake --preset debug-tsan || return 1
  cmake --build --preset debug-tsan -j "$JOBS" || return 1
  ctest --preset debug-tsan || return 1
}

run_fault() {
  banner "fault: deterministic fault-injection suite (Release + ASan+UBSan)"
  # The suite asserts bit-identical engine results for identical seeds, so
  # running it under both build types is the determinism check the
  # robustness docs promise (docs/ROBUSTNESS.md).
  cmake --preset release || return 1
  cmake --build --preset release -j "$JOBS" --target fault_injection_test || return 1
  ctest --test-dir build-release -L fault --output-on-failure || return 1
  cmake --preset debug-asan-ubsan || return 1
  cmake --build --preset debug-asan-ubsan -j "$JOBS" --target fault_injection_test || return 1
  ctest --test-dir build-asan-ubsan -L fault --output-on-failure || return 1
}

run_serving() {
  banner "serving: scheduler suite (chunked prefill + metrics, both builds)"
  # Chunked prefill must be bit-deterministic and drain identical totals
  # in Release and under sanitizers, same contract as the fault stage.
  cmake --preset release || return 1
  cmake --build --preset release -j "$JOBS" \
    --target serving_test chunked_prefill_test || return 1
  ctest --test-dir build-release -L serving --output-on-failure || return 1
  cmake --preset debug-asan-ubsan || return 1
  cmake --build --preset debug-asan-ubsan -j "$JOBS" \
    --target serving_test chunked_prefill_test || return 1
  ctest --test-dir build-asan-ubsan -L serving --output-on-failure || return 1
}

run_slo() {
  banner "slo: overload-control suite (classes, deadlines, ladder, both builds)"
  # Class-aware scheduling, deadline timeouts and the degradation ladder
  # must be bit-deterministic per seed in Release and under sanitizers,
  # same contract as the fault stage.
  cmake --preset release || return 1
  cmake --build --preset release -j "$JOBS" --target slo_scheduler_test || return 1
  ctest --test-dir build-release -L slo --output-on-failure || return 1
  cmake --preset debug-asan-ubsan || return 1
  cmake --build --preset debug-asan-ubsan -j "$JOBS" --target slo_scheduler_test || return 1
  ctest --test-dir build-asan-ubsan -L slo --output-on-failure || return 1
}

run_tier() {
  banner "tier: tiered-swap suite (placement, failover, blacklist, both builds)"
  # Tier placement, LRU demotion, failover and blacklisting must be
  # bit-deterministic per seed in Release and under sanitizers, same
  # contract as the fault stage.
  cmake --preset release || return 1
  cmake --build --preset release -j "$JOBS" --target tiered_swap_test || return 1
  ctest --test-dir build-release -L tier --output-on-failure || return 1
  cmake --preset debug-asan-ubsan || return 1
  cmake --build --preset debug-asan-ubsan -j "$JOBS" --target tiered_swap_test || return 1
  ctest --test-dir build-asan-ubsan -L tier --output-on-failure || return 1
}

run_fleet() {
  banner "fleet: router suite (routing, outage drain, migration, all builds)"
  # The fleet suite asserts bit-identical seeded runs and
  # exactly-one-terminal-state under a replica outage. It runs in all
  # three lanes: Release, ASan+UBSan, and TSan — the router will sit in
  # front of the threaded kernel pool (ROADMAP), so the TSan tripwire
  # covers it from day one.
  cmake --preset release || return 1
  cmake --build --preset release -j "$JOBS" --target fleet_router_test || return 1
  ctest --test-dir build-release -L fleet --output-on-failure || return 1
  cmake --preset debug-asan-ubsan || return 1
  cmake --build --preset debug-asan-ubsan -j "$JOBS" --target fleet_router_test || return 1
  ctest --test-dir build-asan-ubsan -L fleet --output-on-failure || return 1
  cmake --preset debug-tsan || return 1
  cmake --build --preset debug-tsan -j "$JOBS" --target fleet_router_test || return 1
  ctest --test-dir build-tsan -L fleet --output-on-failure || return 1
}

run_prefix() {
  banner "prefix: prefix-sharing suite (radix index, CoW, sessions, all builds)"
  # Prefix attach, retained-pool reclaim and session traces must be
  # bit-deterministic per seed across all three lanes — the suite's
  # seeded session run is asserted bit-identical in Release, ASan+UBSan
  # and TSan, extending the fleet stage's determinism contract to the
  # radix-shared KV path.
  cmake --preset release || return 1
  cmake --build --preset release -j "$JOBS" --target prefix_sharing_test || return 1
  ctest --test-dir build-release -L prefix --output-on-failure || return 1
  cmake --preset debug-asan-ubsan || return 1
  cmake --build --preset debug-asan-ubsan -j "$JOBS" --target prefix_sharing_test || return 1
  ctest --test-dir build-asan-ubsan -L prefix --output-on-failure || return 1
  cmake --preset debug-tsan || return 1
  cmake --build --preset debug-tsan -j "$JOBS" --target prefix_sharing_test || return 1
  ctest --test-dir build-tsan -L prefix --output-on-failure || return 1
}

run_disagg() {
  banner "disagg: prefill/decode split suite (handoff, backpressure, all builds)"
  # Disaggregated fleets must be bit-deterministic per seed across all
  # three lanes — the suite's seeded 2p2d run (outage + handoff faults)
  # is asserted bit-identical in Release, ASan+UBSan and TSan, and the
  # acceptance case (a prefill replica killed mid-run) must reach 100%
  # terminal outcomes in every lane.
  cmake --preset release || return 1
  cmake --build --preset release -j "$JOBS" --target disagg_test || return 1
  ctest --test-dir build-release -L disagg --output-on-failure || return 1
  cmake --preset debug-asan-ubsan || return 1
  cmake --build --preset debug-asan-ubsan -j "$JOBS" --target disagg_test || return 1
  ctest --test-dir build-asan-ubsan -L disagg --output-on-failure || return 1
  cmake --preset debug-tsan || return 1
  cmake --build --preset debug-tsan -j "$JOBS" --target disagg_test || return 1
  ctest --test-dir build-tsan -L disagg --output-on-failure || return 1
}

run_chaos() {
  banner "chaos: crash-recovery suite (crash, snapshot, chaos, all builds)"
  # Crash restarts and the composed chaos schedule must be
  # bit-deterministic per seed across all three lanes. Beyond the ctest
  # suite, the stage runs one fixed seeded chaos serve through the CLI in
  # every lane and diffs the full stdout — counters, audit and all — so a
  # lane-dependent recovery path cannot slip past the unit asserts.
  local chaos_args=(serve --rate 24 --duration 15 --seed 29 --replicas 4
                    --chaos-seed 7 --chaos-intensity 0.8)
  cmake --preset release || return 1
  cmake --build --preset release -j "$JOBS" \
    --target crash_recovery_test turbo_cli || return 1
  ctest --test-dir build-release -L chaos --output-on-failure || return 1
  ./build-release/tools/turbo_cli "${chaos_args[@]}" \
    > build-release/chaos_run.txt || return 1
  cmake --preset debug-asan-ubsan || return 1
  cmake --build --preset debug-asan-ubsan -j "$JOBS" \
    --target crash_recovery_test turbo_cli || return 1
  ctest --test-dir build-asan-ubsan -L chaos --output-on-failure || return 1
  ./build-asan-ubsan/tools/turbo_cli "${chaos_args[@]}" \
    > build-asan-ubsan/chaos_run.txt || return 1
  cmake --preset debug-tsan || return 1
  cmake --build --preset debug-tsan -j "$JOBS" \
    --target crash_recovery_test turbo_cli || return 1
  ctest --test-dir build-tsan -L chaos --output-on-failure || return 1
  ./build-tsan/tools/turbo_cli "${chaos_args[@]}" \
    > build-tsan/chaos_run.txt || return 1
  diff build-release/chaos_run.txt build-asan-ubsan/chaos_run.txt || {
    echo "chaos: seeded chaos run differs between Release and ASan+UBSan" >&2
    return 1
  }
  diff build-release/chaos_run.txt build-tsan/chaos_run.txt || {
    echo "chaos: seeded chaos run differs between Release and TSan" >&2
    return 1
  }
  echo "chaos: seeded chaos run is byte-identical across all three lanes"
}

run_lint() {
  banner "lint: turbo_lint determinism + quant-invariant rules (14 rules)"
  # Reuse whichever configured build dir already has the lint binary;
  # fall back to configuring the release preset.
  local bin=""
  for d in build-release build-asan-ubsan build; do
    if [[ -x "$d/tools/turbo_lint" ]]; then bin="$d/tools/turbo_lint"; break; fi
  done
  if [[ -z "$bin" ]]; then
    cmake --preset release || return 1
    cmake --build --preset release -j "$JOBS" --target turbo_lint || return 1
    bin="build-release/tools/turbo_lint"
  fi
  "$bin" "$ROOT" || return 1
}

run_tidy() {
  banner "tidy: clang-tidy over src/ and tools/"
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "SKIP: clang-tidy not installed"
    return 0
  fi
  cmake --preset tidy || return 1
  local sources
  mapfile -t sources < <(find src tools -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p build-tidy "${sources[@]}" || return 1
  else
    clang-tidy -quiet -p build-tidy "${sources[@]}" || return 1
  fi
}

if want release; then run_release || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want asan; then run_asan || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want tsan; then run_tsan || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want fault; then run_fault || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want serving; then run_serving || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want slo; then run_slo || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want tier; then run_tier || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want fleet; then run_fleet || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want prefix; then run_prefix || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want disagg; then run_disagg || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want chaos; then run_chaos || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want lint; then run_lint || FAILED=1; fi
if [[ $FAILED -eq 0 ]] && want tidy; then run_tidy || FAILED=1; fi

if [[ $FAILED -ne 0 ]]; then
  echo
  echo "check.sh: FAILED"
  exit 1
fi
echo
echo "check.sh: all requested stages passed"
