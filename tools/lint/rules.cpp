// The turbo_lint rules, implemented over the token stream.
// Rules 1-7 are the v1 invariants reimplemented on the engine; rules
// 8-11 are the determinism / concurrency-readiness pack added ahead of
// the SIMD + thread-pool kernel overhaul; 12-13 guard the fleet
// migration channel and the paged cache's copy-on-write contract (see
// docs/STATIC_ANALYSIS.md for the full catalog: rationale, examples,
// suppression syntax).
#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/engine.h"

namespace turbo::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// Index of the ')' matching the '(' at `open`; toks.size() if unmatched.
std::size_t match_paren(const Tokens& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

// Index of the '}' matching the '{' at `open`; toks.size() if unmatched.
std::size_t match_brace(const Tokens& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

// Index just past the '>' closing the '<' at `open` ('>>' closes two).
std::size_t skip_angles(const Tokens& toks, std::size_t open) {
  int depth = 0;
  std::size_t i = open;
  while (i < toks.size()) {
    if (toks[i].kind == TokKind::kPunct) {
      if (toks[i].text == "<") ++depth;
      if (toks[i].text == ">") --depth;
      if (toks[i].text == ">>") depth -= 2;
    }
    ++i;
    if (depth <= 0) break;
  }
  return i;
}

// First token of the statement containing `i`: the token right after the
// previous ';', '{' or '}' (directives are skipped).
std::size_t statement_start(const Tokens& toks, std::size_t i) {
  while (i > 0) {
    const Token& prev = toks[i - 1];
    if (is_punct(prev, ";") || is_punct(prev, "{") || is_punct(prev, "}")) {
      break;
    }
    --i;
  }
  return i;
}

void emit(const SourceFile& file, std::size_t line, const std::string& rule,
          const std::string& message, std::vector<Finding>& out) {
  const RuleInfo* info = rule_info(rule);
  if (info != nullptr && !info->suppression.empty() &&
      line_has_marker(file.lexed, line, info->suppression)) {
    return;
  }
  out.push_back({file.rel, line, rule, message});
}

// --- rule 1: no-raw-assert ------------------------------------------------

void rule_no_raw_assert(const SourceFile& file, std::vector<Finding>& out) {
  const Tokens& toks = file.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kDirective) {
      if (toks[i].text.find("include") != std::string::npos &&
          (toks[i].text.find("<cassert>") != std::string::npos ||
           toks[i].text.find("<assert.h>") != std::string::npos)) {
        emit(file, toks[i].line, "no-raw-assert",
             "do not include <cassert>; use common/check.h", out);
      }
      continue;
    }
    if (is_ident(toks[i], "assert") && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      emit(file, toks[i].line, "no-raw-assert",
           "raw assert() compiles out in release builds; use TURBO_CHECK "
           "or TURBO_DCHECK",
           out);
    }
  }
}

// --- rule 2: unchecked-i8-cast --------------------------------------------

void rule_unchecked_i8_cast(const SourceFile& file,
                            std::vector<Finding>& out) {
  if (file.rel == "src/common/numeric.h") return;  // home of the helpers
  const Tokens& toks = file.lexed.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "static_cast") || !is_punct(toks[i + 1], "<")) {
      continue;
    }
    std::size_t j = i + 2;
    if (j + 1 < toks.size() && is_ident(toks[j], "std") &&
        is_punct(toks[j + 1], "::")) {
      j += 2;
    }
    if (j + 1 < toks.size() &&
        (is_ident(toks[j], "int8_t") || is_ident(toks[j], "uint8_t")) &&
        is_punct(toks[j + 1], ">")) {
      emit(file, toks[i].line, "unchecked-i8-cast",
           "bare 8-bit narrowing cast; use clamp_to_i8 / saturate_cast<> "
           "from common/numeric.h (or annotate with "
           "turbo-lint: allow-narrowing)",
           out);
    }
  }
}

// --- rule 3: integer-kernel -----------------------------------------------

void rule_integer_kernel(const SourceFile& file, std::vector<Finding>& out) {
  if (file.lexed.tags.count("integer-kernel") == 0) return;
  static const std::set<std::string> kMath = {
      "exp", "log", "sqrt", "pow", "nearbyint", "round", "fma"};
  const Tokens& toks = file.lexed.tokens;
  const char* kMsg =
      "floating-point arithmetic in a file tagged integer-kernel "
      "(annotate the line with turbo-lint: allow-float if deliberate)";
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kNumber && t.is_float) {
      emit(file, t.line, "integer-kernel", kMsg, out);
    } else if (is_ident(t, "float") || is_ident(t, "double") ||
               is_ident(t, "exp_neg")) {
      emit(file, t.line, "integer-kernel", kMsg, out);
    } else if (t.kind == TokKind::kIdent && kMath.count(t.text) > 0 &&
               i >= 2 && is_punct(toks[i - 1], "::") &&
               is_ident(toks[i - 2], "std")) {
      emit(file, t.line, "integer-kernel", kMsg, out);
    }
  }
}

// --- rule 4: method-shape-check -------------------------------------------

// Body of the function definition matching [pattern...] '('; false when
// only declarations exist. On success, [begin, end] span the braces.
bool find_body(const Tokens& toks, const std::vector<std::string>& pattern,
               std::size_t& begin, std::size_t& end, std::size_t& line) {
  for (std::size_t i = 0; i + pattern.size() < toks.size(); ++i) {
    bool match = true;
    for (std::size_t k = 0; k < pattern.size(); ++k) {
      if (toks[i + k].text != pattern[k]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    std::size_t j = i + pattern.size() - 1;  // at '('
    j = match_paren(toks, j);
    // Skip qualifiers (const, noexcept, override) up to '{' or ';'.
    while (j < toks.size() && !is_punct(toks[j], "{") &&
           !is_punct(toks[j], ";")) {
      ++j;
    }
    if (j >= toks.size() || is_punct(toks[j], ";")) continue;  // declaration
    begin = j;
    end = match_brace(toks, j);
    line = toks[i].line;
    return true;
  }
  return false;
}

bool body_has_check(const Tokens& toks, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::kIdent &&
        toks[i].text.rfind("TURBO_CHECK", 0) == 0) {
      return true;
    }
  }
  return false;
}

void rule_method_shape_check(const Project& project,
                             std::vector<Finding>& out) {
  static const char* kMethods[] = {"prefill", "decode", "attend"};
  for (const SourceFile& file : project.files()) {
    const Tokens& toks = file.lexed.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i], "class") ||
          toks[i + 1].kind != TokKind::kIdent) {
        continue;
      }
      const std::string cls = toks[i + 1].text;
      if (cls == "KvAttention") continue;
      // Scan the base-clause up to '{' or ';' for KvAttention.
      bool derives = false;
      std::size_t j = i + 2;
      bool saw_colon = false;
      while (j < toks.size() && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";")) {
        if (is_punct(toks[j], ":")) saw_colon = true;
        if (saw_colon && is_ident(toks[j], "KvAttention")) derives = true;
        ++j;
      }
      if (!derives || j >= toks.size() || is_punct(toks[j], ";")) continue;

      for (const char* method : kMethods) {
        std::size_t begin = 0;
        std::size_t end = 0;
        std::size_t line = 0;
        const SourceFile* where = nullptr;
        for (const SourceFile& candidate : project.files()) {
          if (find_body(candidate.lexed.tokens, {cls, "::", method, "("},
                        begin, end, line)) {
            where = &candidate;
            break;
          }
        }
        bool checked = false;
        if (where != nullptr) {
          checked = body_has_check(where->lexed.tokens, begin, end);
        } else if (find_body(toks, {method, "("}, begin, end, line)) {
          where = &file;  // inline definition inside the class body
          checked = body_has_check(toks, begin, end);
        }
        if (where == nullptr) continue;  // implementation not in this tree
        if (!checked) {
          emit(*where, line, "method-shape-check",
               cls + "::" + method +
                   " must validate its input shapes with TURBO_CHECK",
               out);
        }
      }
    }
  }
}

// --- rule 5: unchecked-cache-append ---------------------------------------

void rule_unchecked_cache_append(const SourceFile& file,
                                 std::vector<Finding>& out) {
  const Tokens& toks = file.lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "append_token") || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    // Count top-level arguments: only the paged overload takes three.
    const std::size_t close = match_paren(toks, i + 1);
    std::size_t args = 1;
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      if (is_punct(toks[j], ")")) --depth;
      if (is_punct(toks[j], ",") && depth == 1) ++args;
    }
    if (args != 3) continue;
    const std::size_t start = statement_start(toks, i);
    // Declarations and definitions name the bool return type.
    bool is_decl = false;
    for (std::size_t j = start; j < i; ++j) {
      if (is_ident(toks[j], "bool")) is_decl = true;
    }
    if (is_decl) continue;
    // Peel the callee chain (obj., this->, ns::) off the end; whatever
    // remains before it is the consuming context.
    std::size_t ctx_end = i;
    while (ctx_end > start) {
      const Token& t = toks[ctx_end - 1];
      if (t.kind == TokKind::kIdent || is_punct(t, ".") ||
          is_punct(t, "->") || is_punct(t, "::")) {
        --ctx_end;
      } else {
        break;
      }
    }
    const bool void_cast = ctx_end >= start + 3 &&
                           is_punct(toks[ctx_end - 3], "(") &&
                           is_ident(toks[ctx_end - 2], "void") &&
                           is_punct(toks[ctx_end - 1], ")");
    if (ctx_end != start && !void_cast) continue;  // result is consumed
    emit(file, toks[i].line, "unchecked-cache-append",
         "PagedKvCache::append_token result discarded; page exhaustion "
         "must be handled (or annotate with "
         "turbo-lint: allow-unchecked-append)",
         out);
  }
}

// --- rule 6: unmirrored-engine-counter ------------------------------------

// [begin, end] token range of `struct <name> { ... }` in `toks`.
bool find_struct_body(const Tokens& toks, const char* name,
                      std::size_t& begin, std::size_t& end) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "struct") || !is_ident(toks[i + 1], name)) {
      continue;
    }
    std::size_t j = i + 2;
    while (j < toks.size() && !is_punct(toks[j], "{") &&
           !is_punct(toks[j], ";")) {
      ++j;
    }
    if (j >= toks.size() || is_punct(toks[j], ";")) continue;
    begin = j;
    end = match_brace(toks, j);
    return true;
  }
  return false;
}

// One result-struct / metrics-struct mirror pair: every std::size_t or
// bool field of `result_struct` (in `result_rel`) must appear in
// `metrics_struct` (in `metrics_rel`) and be read as `result.<name>` in
// `metrics_cpp_rel`. Instantiated for the serving engine and the fleet
// router.
void check_counter_mirror(const Project& project, const char* result_rel,
                          const char* result_struct, const char* metrics_rel,
                          const char* metrics_struct,
                          const char* metrics_cpp_rel,
                          std::vector<Finding>& out) {
  const SourceFile* engine_h = project.find(result_rel);
  const SourceFile* metrics_h = project.find(metrics_rel);
  const SourceFile* metrics_cpp = project.find(metrics_cpp_rel);
  if (engine_h == nullptr) return;  // layer absent from this tree

  const Tokens& etoks = engine_h->lexed.tokens;
  std::size_t rbegin = 0;
  std::size_t rend = 0;
  if (!find_struct_body(etoks, result_struct, rbegin, rend)) return;

  std::size_t mbegin = 0;
  std::size_t mend = 0;
  const bool have_metrics =
      metrics_h != nullptr && find_struct_body(metrics_h->lexed.tokens,
                                               metrics_struct, mbegin, mend);

  for (std::size_t i = rbegin + 1; i + 1 < rend; ++i) {
    std::string name;
    std::size_t line = 0;
    if (is_ident(etoks[i], "bool") &&
        etoks[i + 1].kind == TokKind::kIdent) {
      name = etoks[i + 1].text;
      line = etoks[i].line;
    } else if (i + 3 < rend && is_ident(etoks[i], "std") &&
               is_punct(etoks[i + 1], "::") &&
               is_ident(etoks[i + 2], "size_t") &&
               etoks[i + 3].kind == TokKind::kIdent) {
      name = etoks[i + 3].text;
      line = etoks[i].line;
    } else {
      continue;
    }

    bool in_metrics = false;
    if (have_metrics) {
      const Tokens& mtoks = metrics_h->lexed.tokens;
      for (std::size_t j = mbegin; j < mend; ++j) {
        if (is_ident(mtoks[j], name.c_str())) in_metrics = true;
      }
    }
    bool assigned = false;
    if (metrics_cpp != nullptr) {
      const Tokens& ctoks = metrics_cpp->lexed.tokens;
      for (std::size_t j = 0; j + 2 < ctoks.size(); ++j) {
        if (is_ident(ctoks[j], "result") && is_punct(ctoks[j + 1], ".") &&
            is_ident(ctoks[j + 2], name.c_str())) {
          assigned = true;
        }
      }
    }
    if (in_metrics && assigned) continue;
    std::string what;
    if (!in_metrics) {
      what = std::string("has no ") + metrics_struct + " counterpart";
    }
    if (!assigned) {
      if (!what.empty()) what += " and ";
      what += std::string("is never read from result. in ") + metrics_cpp_rel;
    }
    emit(*engine_h, line, "unmirrored-engine-counter",
         std::string(result_struct) + "::" + name + " " + what +
             "; mirror it into " + metrics_struct +
             " (or annotate with turbo-lint: allow-unmirrored)",
         out);
  }
}

void rule_unmirrored_engine_counters(const Project& project,
                                     std::vector<Finding>& out) {
  check_counter_mirror(project, "src/serving/engine.h", "EngineResult",
                       "src/serving/metrics.h", "ServingMetrics",
                       "src/serving/metrics.cpp", out);
  check_counter_mirror(project, "src/fleet/router.h", "FleetResult",
                       "src/fleet/metrics.h", "FleetMetrics",
                       "src/fleet/metrics.cpp", out);
}

// --- rule 7: unfaultable-swap-io ------------------------------------------

void rule_unfaultable_swap_io(const SourceFile& file,
                              std::vector<Finding>& out) {
  if (file.rel.rfind("src/serving/swap.", 0) != 0) return;
  static const std::set<std::string> kIoFns = {
      "store", "store_phantom", "fetch", "swap_in", "swap_out", "promote"};
  const Tokens& toks = file.lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || kIoFns.count(toks[i].text) == 0 ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    // A name preceded by '.' or '->' is a call site, not a signature.
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      continue;
    }
    const std::size_t close = match_paren(toks, i + 1);
    bool has_injector = false;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_ident(toks[j], "FaultInjector")) has_injector = true;
    }
    if (has_injector) continue;
    emit(file, toks[i].line, "unfaultable-swap-io",
         toks[i].text +
             " stores or fetches a swap stream but takes no FaultInjector*; "
             "every swap I/O path must be fault-injectable (or annotate "
             "with turbo-lint: allow-unfaultable)",
         out);
  }
}

// --- rule 12: unfaultable-replica-channel ---------------------------------

// Mirror of rule 7 for the fleet layer: every replica-to-replica KV
// migration/transfer entry point in src/fleet/ — including the
// prefill→decode handoff path — must accept a FaultInjector*, so
// in-transit corruption and transient send faults stay injectable and
// seed-deterministic. Call sites (obj.migrate(...), this->handoff(...))
// are exempt; the router's private failover plumbing is deliberately
// outside the set — the contract binds the wire, not the bookkeeping
// around it.
void rule_unfaultable_replica_channel(const SourceFile& file,
                                      std::vector<Finding>& out) {
  if (file.rel.rfind("src/fleet/", 0) != 0) return;
  static const std::set<std::string> kChannelFns = {
      "migrate",  "migrate_stream", "transfer",
      "transfer_stream", "handoff", "handoff_stream"};
  const Tokens& toks = file.lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        kChannelFns.count(toks[i].text) == 0 ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    // A name preceded by '.' or '->' is a call site, not a signature.
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      continue;
    }
    const std::size_t close = match_paren(toks, i + 1);
    bool has_injector = false;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_ident(toks[j], "FaultInjector")) has_injector = true;
    }
    if (has_injector) continue;
    emit(file, toks[i].line, "unfaultable-replica-channel",
         toks[i].text +
             " moves a KV stream between replicas but takes no "
             "FaultInjector*; every migration path must be "
             "fault-injectable (or annotate with turbo-lint: "
             "allow-unfaultable-channel)",
         out);
  }
}

// --- rule 14: unfaultable-snapshot-io -------------------------------------

// Third member of the rule 7/12 family, binding the crash-recovery
// layer: every snapshot save/restore entry point in
// src/serving/snapshot.* must accept a FaultInjector*, so snapshot-store
// unavailability and restore-time corruption stay injectable and
// seed-deterministic — a recovery path that cannot be made to fail on
// demand is a recovery path that is never tested. Call sites
// (store.save(...), store.restore(...)) are exempt; the pure
// serialize/deserialize helpers are deliberately outside the set — the
// contract binds the store boundary, not the codec.
void rule_unfaultable_snapshot_io(const SourceFile& file,
                                  std::vector<Finding>& out) {
  if (file.rel.rfind("src/serving/snapshot.", 0) != 0) return;
  static const std::set<std::string> kSnapshotFns = {
      "save", "restore", "save_snapshot", "restore_snapshot",
      "snapshot_to", "restore_from"};
  const Tokens& toks = file.lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        kSnapshotFns.count(toks[i].text) == 0 ||
        !is_punct(toks[i + 1], "(")) {
      continue;
    }
    // A name preceded by '.' or '->' is a call site, not a signature.
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"))) {
      continue;
    }
    const std::size_t close = match_paren(toks, i + 1);
    bool has_injector = false;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_ident(toks[j], "FaultInjector")) has_injector = true;
    }
    if (has_injector) continue;
    emit(file, toks[i].line, "unfaultable-snapshot-io",
         toks[i].text +
             " saves or restores a replica snapshot but takes no "
             "FaultInjector*; every crash-recovery I/O path must be "
             "fault-injectable (or annotate with turbo-lint: "
             "allow-unfaultable-snapshot)",
         out);
  }
}

// --- rule 13: cow-unguarded-page-write ------------------------------------

// The paged cache shares full pages across sequences by refcount
// (copy-on-write); mutating page_data_[...] while another sequence still
// references the page corrupts that sequence's KV. Writes are sanctioned
// only inside the fresh-page allocation sites (append_prefill_block,
// flush_buffer, adopt_sequence — the page was just allocated, refcount
// is being set to 1) or when the surrounding statement proves private
// ownership with a refcount_[...] == comparison.
void rule_cow_unguarded_page_write(const SourceFile& file,
                                   std::vector<Finding>& out) {
  const Tokens& toks = file.lexed.tokens;
  // Body spans of the fresh-page allocation sites.
  static const char* kFreshPageFns[] = {"append_prefill_block",
                                        "flush_buffer", "adopt_sequence"};
  std::vector<std::pair<std::size_t, std::size_t>> fresh;
  for (const char* fn : kFreshPageFns) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_ident(toks[i], fn) || !is_punct(toks[i + 1], "(")) continue;
      std::size_t j = match_paren(toks, i + 1);
      while (j < toks.size() && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";")) {
        ++j;
      }
      if (j >= toks.size() || is_punct(toks[j], ";")) continue;  // call/decl
      fresh.emplace_back(j, match_brace(toks, j));
    }
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "page_data_") || !is_punct(toks[i + 1], "[")) {
      continue;
    }
    // Matching ']' of the subscript.
    int depth = 0;
    std::size_t close = toks.size();
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (is_punct(toks[j], "[")) ++depth;
      if (is_punct(toks[j], "]")) {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
    }
    if (close >= toks.size()) continue;
    // A write is '=' right after the subscript or after a member chain
    // ('==' is a comparison, not a write; the lexer keeps it one token).
    std::size_t j = close + 1;
    while (j + 1 < toks.size() && is_punct(toks[j], ".") &&
           toks[j + 1].kind == TokKind::kIdent) {
      j += 2;
    }
    if (j >= toks.size() || !is_punct(toks[j], "=")) continue;
    bool sanctioned = false;
    for (const auto& [b, e] : fresh) {
      if (i > b && i < e) {
        sanctioned = true;
        break;
      }
    }
    if (sanctioned) continue;
    // Guarded form: a refcount_[...] == comparison in the surrounding
    // statement / condition (e.g. `if (--refcount_[p] == 0)` before a
    // release-path reset, or `if (refcount_[p] == 1)` before a CoW write).
    bool guarded = false;
    const std::size_t lo = i > 40 ? i - 40 : 0;
    for (std::size_t k = lo; k + 1 < i && !guarded; ++k) {
      if (!is_ident(toks[k], "refcount_") || !is_punct(toks[k + 1], "[")) {
        continue;
      }
      for (std::size_t m = k + 2; m < std::min(k + 10, i); ++m) {
        if (is_punct(toks[m], "==")) {
          guarded = true;
          break;
        }
      }
    }
    if (guarded) continue;
    emit(file, toks[i].line, "cow-unguarded-page-write",
         "write to page_data_[...] outside a fresh-page allocation site "
         "without a refcount_[...] == guard: shared (refcount > 1) pages "
         "are copy-on-write and must never be mutated in place (or "
         "annotate with turbo-lint: allow-cow-write)",
         out);
  }
}

// --- rules 8 + 11: loops over unordered containers ------------------------

struct UnorderedLoop {
  std::size_t for_index = 0;   // token index of the `for`
  std::string container;       // the unordered container's identifier
  std::size_t body_begin = 0;  // first token of the body
  std::size_t body_end = 0;    // one past the last body token
};

// Range-for (`for (x : m)`) and iterator loops (`for (auto it =
// m.begin(); ...`) over identifiers known to be unordered containers.
std::vector<UnorderedLoop> collect_unordered_loops(
    const SourceFile& file, const std::set<std::string>& names) {
  std::vector<UnorderedLoop> loops;
  const Tokens& toks = file.lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = match_paren(toks, open);
    if (close >= toks.size()) continue;

    std::string container;
    // Range-for: a ':' at header depth 1 splits declaration and range.
    int depth = 0;
    std::size_t colon = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (is_punct(toks[j], "(")) ++depth;
      if (is_punct(toks[j], ")")) --depth;
      if (depth == 1 && is_punct(toks[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon != 0) {
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == TokKind::kIdent && names.count(toks[j].text)) {
          container = toks[j].text;
          break;
        }
      }
    } else {
      // Iterator form: `m.begin()` / `m.cbegin()` in the header.
      for (std::size_t j = open + 1; j + 2 < close; ++j) {
        if (toks[j].kind == TokKind::kIdent && names.count(toks[j].text) &&
            is_punct(toks[j + 1], ".") &&
            (is_ident(toks[j + 2], "begin") ||
             is_ident(toks[j + 2], "cbegin"))) {
          container = toks[j].text;
          break;
        }
      }
    }
    if (container.empty()) continue;

    UnorderedLoop loop;
    loop.for_index = i;
    loop.container = container;
    if (close + 1 < toks.size() && is_punct(toks[close + 1], "{")) {
      loop.body_begin = close + 2;
      loop.body_end = match_brace(toks, close + 1);
    } else {
      loop.body_begin = close + 1;
      std::size_t j = close + 1;
      while (j < toks.size() && !is_punct(toks[j], ";")) ++j;
      loop.body_end = j + 1;
    }
    loops.push_back(loop);
  }
  return loops;
}

// An ordering-sensitive sink inside an unordered loop body.
struct Sink {
  std::size_t line = 0;
  std::string what;
  bool is_snapshot_append = false;  // push_back/emplace_back only
  std::string append_target;        // the vector being appended to
};

const std::set<std::string>& cast_idents() {
  static const std::set<std::string> kCasts = {
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "saturate_cast"};
  return kCasts;
}

std::vector<Sink> find_sinks(const Tokens& toks, std::size_t begin,
                             std::size_t end) {
  std::vector<Sink> sinks;
  static const char* kOrderedPrefixes[] = {"serialize", "write", "emit",
                                           "print"};
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "<" && i > begin &&
          toks[i - 1].kind == TokKind::kIdent &&
          cast_idents().count(toks[i - 1].text) > 0) {
        i = skip_angles(toks, i) - 1;  // template args, not a comparison
        continue;
      }
      if (t.text == "<" || t.text == ">" || t.text == "<=" ||
          t.text == ">=") {
        sinks.push_back({t.line, "order-dependent comparison/selection",
                         false, ""});
      }
      if (t.text == "<<") {
        sinks.push_back({t.line, "stream output", false, ""});
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "push_back" || t.text == "emplace_back") {
      Sink s;
      s.line = t.line;
      s.what = "ordered append (" + t.text + ")";
      s.is_snapshot_append = true;
      if (i >= 2 &&
          (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
          toks[i - 2].kind == TokKind::kIdent) {
        s.append_target = toks[i - 2].text;
      }
      sinks.push_back(s);
      continue;
    }
    if (t.text == "cout" || t.text == "cerr" || t.text == "printf" ||
        t.text == "fprintf") {
      sinks.push_back({t.line, "console/writer output", false, ""});
      continue;
    }
    if (t.text == "min" || t.text == "max") {
      sinks.push_back({t.line, "min/max selection", false, ""});
      continue;
    }
    for (const char* prefix : kOrderedPrefixes) {
      if (t.text.rfind(prefix, 0) == 0) {
        sinks.push_back({t.line, "serialization/writer call (" + t.text + ")",
                         false, ""});
        break;
      }
    }
  }
  return sinks;
}

// The sanctioned sorted-snapshot idiom: the loop's only sinks append to
// one local vector which is std::sort-ed right after the loop.
bool is_sorted_snapshot(const Tokens& toks, const UnorderedLoop& loop,
                        const std::vector<Sink>& sinks) {
  if (sinks.empty()) return false;
  std::string target;
  for (const Sink& s : sinks) {
    if (!s.is_snapshot_append || s.append_target.empty()) return false;
    if (target.empty()) target = s.append_target;
    if (s.append_target != target) return false;
  }
  const std::size_t horizon = std::min(loop.body_end + 40, toks.size());
  for (std::size_t i = loop.body_end; i + 1 < horizon; ++i) {
    if (is_ident(toks[i], "sort")) {
      for (std::size_t j = i + 1; j < std::min(i + 8, horizon); ++j) {
        if (is_ident(toks[j], target.c_str())) return true;
      }
    }
  }
  return false;
}

void rule_nondeterministic_iteration(const Project& project,
                                     const SourceFile& file,
                                     std::vector<Finding>& out) {
  const Tokens& toks = file.lexed.tokens;
  for (const UnorderedLoop& loop :
       collect_unordered_loops(file, project.unordered_names())) {
    const std::vector<Sink> sinks =
        find_sinks(toks, loop.body_begin, loop.body_end);
    if (sinks.empty()) continue;
    if (is_sorted_snapshot(toks, loop, sinks)) continue;
    std::ostringstream msg;
    msg << "loop over unordered container '" << loop.container
        << "' feeds an ordering-sensitive sink (" << sinks.front().what
        << " at line " << sinks.front().line
        << "); iterate an ordered container or take an explicit sorted "
           "snapshot (or annotate with turbo-lint: allow-unordered-iter)";
    emit(file, toks[loop.for_index].line, "nondeterministic-iteration",
         msg.str(), out);
  }
}

// --- rule 9: unsanctioned-entropy -----------------------------------------

void rule_unsanctioned_entropy(const SourceFile& file,
                               std::vector<Finding>& out) {
  // The seeded RNG wrapper is the one sanctioned entropy owner.
  if (file.rel == "src/common/rng.h" || file.rel == "src/common/rng.cpp") {
    return;
  }
  static const std::set<std::string> kRandFns = {"rand", "srand", "rand_r",
                                                 "drand48"};
  static const std::set<std::string> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  const Tokens& toks = file.lexed.tokens;
  const char* kSuffix =
      "; seeded determinism is the repo contract — draw from "
      "turbo::Rng (src/common/rng.h) instead (or annotate with "
      "turbo-lint: allow-entropy)";
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool called = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    const bool member_access =
        i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));

    if (kRandFns.count(t.text) > 0 && called && !member_access) {
      emit(file, t.line, "unsanctioned-entropy",
           t.text + "() draws unseeded process-global entropy" + kSuffix,
           out);
      continue;
    }
    if (t.text == "random_device") {
      emit(file, t.line, "unsanctioned-entropy",
           "std::random_device is hardware entropy, unseedable by design" +
               std::string(kSuffix),
           out);
      continue;
    }
    if (kClocks.count(t.text) > 0 && i + 2 < toks.size() &&
        is_punct(toks[i + 1], "::") && is_ident(toks[i + 2], "now")) {
      // Wall-clock timing is sanctioned in the CLI driver only, where it
      // reports human-facing runtimes and never feeds computation.
      if (file.rel == "tools/turbo_cli.cpp") continue;
      emit(file, t.line, "unsanctioned-entropy",
           "std::chrono::" + t.text +
               "::now() makes results wall-clock-dependent" + kSuffix,
           out);
      continue;
    }
    if ((t.text == "time" || t.text == "clock") && called && !member_access) {
      const bool scoped = i > 0 && is_punct(toks[i - 1], "::");
      const bool std_scoped = scoped && i > 1 && is_ident(toks[i - 2], "std");
      if (scoped && !std_scoped) continue;  // some other namespace's time()
      emit(file, t.line, "unsanctioned-entropy",
           t.text + "() reads the wall clock" + kSuffix, out);
      continue;
    }
    if (t.text == "reinterpret_cast" && i + 2 < toks.size() &&
        is_punct(toks[i + 1], "<")) {
      const std::size_t close = skip_angles(toks, i + 1);
      for (std::size_t j = i + 2; j < close; ++j) {
        if (is_ident(toks[j], "uintptr_t") || is_ident(toks[j], "intptr_t")) {
          emit(file, t.line, "unsanctioned-entropy",
               "pointer-value-as-integer leaks ASLR entropy into results" +
                   std::string(kSuffix),
               out);
          break;
        }
      }
    }
  }
}

// --- rule 10: mutable-global-state ----------------------------------------

bool in_concurrent_dirs(const std::string& rel) {
  return rel.rfind("src/kernels/", 0) == 0 ||
         rel.rfind("src/quant/", 0) == 0 ||
         rel.rfind("src/attention/", 0) == 0;
}

enum class BraceKind { kNamespace, kType, kOther };

// Tokens that disqualify a namespace-scope statement from being a
// mutable object definition.
bool statement_is_exempt(const Tokens& stmt) {
  static const std::set<std::string> kExemptIdents = {
      "const",    "constexpr", "constinit",     "using",   "typedef",
      "template", "friend",    "static_assert", "extern",  "operator",
      "struct",   "class",     "union",         "enum",    "namespace",
      "inline"};
  for (const Token& t : stmt) {
    if (t.kind == TokKind::kIdent && kExemptIdents.count(t.text) > 0) {
      return true;
    }
    if (is_punct(t, "(")) return true;  // function declaration / macro call
  }
  // An object definition needs at least a type and a name.
  std::size_t idents = 0;
  for (const Token& t : stmt) {
    if (t.kind == TokKind::kIdent) ++idents;
  }
  return idents < 2;
}

void rule_mutable_global_state(const SourceFile& file,
                               std::vector<Finding>& out) {
  if (!in_concurrent_dirs(file.rel)) return;
  const Tokens& toks = file.lexed.tokens;
  std::vector<BraceKind> stack;
  Tokens stmt;  // namespace-scope statement being accumulated
  const char* kMsg =
      " — src/kernels, src/quant and src/attention run on the worker pool; "
      "shared mutable state there is a data race and a determinism hazard. "
      "Make it const/constexpr, pass it explicitly, or annotate with "
      "turbo-lint: allow-mutable-global";

  auto at_namespace_scope = [&stack]() {
    for (const BraceKind k : stack) {
      if (k != BraceKind::kNamespace) return false;
    }
    return true;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kDirective) continue;

    if (is_punct(t, "{")) {
      // Classify by the statement head collected so far.
      BraceKind kind = BraceKind::kOther;
      for (const Token& h : stmt) {
        if (is_ident(h, "namespace")) kind = BraceKind::kNamespace;
      }
      if (kind == BraceKind::kOther) {
        for (const Token& h : stmt) {
          if (is_ident(h, "class") || is_ident(h, "struct") ||
              is_ident(h, "union") || is_ident(h, "enum")) {
            kind = BraceKind::kType;
          }
        }
      }
      if (at_namespace_scope() && kind == BraceKind::kOther) {
        // A function body (or initializer) hanging off a namespace-scope
        // head: scan it for mutable function-statics, then skip it.
        const std::size_t close = match_brace(toks, i);
        for (std::size_t j = i + 1; j < close && j < toks.size(); ++j) {
          if (!is_ident(toks[j], "static")) continue;
          bool is_const = false;
          for (std::size_t k = j; k < close && !is_punct(toks[k], ";");
               ++k) {
            if (is_ident(toks[k], "const") ||
                is_ident(toks[k], "constexpr")) {
              is_const = true;
            }
          }
          if (!is_const) {
            emit(file, toks[j].line, "mutable-global-state",
                 "mutable function-static" + std::string(kMsg), out);
          }
        }
        i = close;
        stmt.clear();
        continue;
      }
      stack.push_back(kind);
      stmt.clear();
      continue;
    }
    if (is_punct(t, "}")) {
      if (!stack.empty()) stack.pop_back();
      stmt.clear();
      continue;
    }
    if (is_punct(t, ";")) {
      if (at_namespace_scope() && !stmt.empty() &&
          !statement_is_exempt(stmt)) {
        emit(file, stmt.front().line, "mutable-global-state",
             "mutable namespace-scope object" + std::string(kMsg), out);
      }
      stmt.clear();
      continue;
    }
    if (at_namespace_scope()) stmt.push_back(t);
  }
}

// --- rule 11: unordered-float-reduction -----------------------------------

// Type of the nearest declaration of `name` before token `at` in this
// file: 1 = float/double, -1 = integral/other known type, 0 = unknown.
int nearest_decl_type(const Tokens& toks, std::size_t at,
                      const std::string& name) {
  static const std::set<std::string> kIntTypes = {
      "int",      "unsigned", "long",    "short",   "size_t",  "uint64_t",
      "int64_t",  "uint32_t", "int32_t", "uint16_t", "int16_t", "uint8_t",
      "int8_t",   "bool",     "char",    "ptrdiff_t"};
  for (std::size_t i = at; i > 0; --i) {
    const std::size_t j = i - 1;
    if (!is_ident(toks[j], name.c_str()) || j == 0) continue;
    const Token& prev = toks[j - 1];
    if (prev.kind != TokKind::kIdent) continue;
    if (prev.text == "float" || prev.text == "double") return 1;
    if (kIntTypes.count(prev.text) > 0) return -1;
  }
  return 0;
}

void rule_unordered_float_reduction(const Project& project,
                                    const SourceFile& file,
                                    std::vector<Finding>& out) {
  const Tokens& toks = file.lexed.tokens;
  static const std::set<std::string> kCompound = {"+=", "-=", "*=", "/="};
  for (const UnorderedLoop& loop :
       collect_unordered_loops(file, project.unordered_names())) {
    for (std::size_t i = loop.body_begin;
         i < loop.body_end && i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kPunct ||
          kCompound.count(toks[i].text) == 0 || i == 0) {
        continue;
      }
      const Token& lhs = toks[i - 1];
      if (lhs.kind != TokKind::kIdent) continue;
      int type = nearest_decl_type(toks, i - 1, lhs.text);
      if (type == 0 && project.float_names().count(lhs.text) > 0) type = 1;
      if (type != 1) continue;
      emit(file, toks[i].line, "unordered-float-reduction",
           "float accumulator '" + lhs.text +
               "' reduced over unordered container '" + loop.container +
               "': FP addition is not associative, so the result depends "
               "on the stdlib's hash layout; accumulate over a sorted "
               "snapshot or in integer domain (or annotate with "
               "turbo-lint: allow-unordered-reduction)",
           out);
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"no-raw-assert",
       "assert() compiles out in release builds; use TURBO_CHECK / "
       "TURBO_DCHECK",
       ""},
      {"unchecked-i8-cast",
       "bare static_cast to int8/uint8 silently truncates; use the checked "
       "helpers in common/numeric.h",
       "allow-narrowing"},
      {"integer-kernel",
       "files tagged integer-kernel must stay free of floating-point "
       "arithmetic (FlashQ decode is INT-only by design)",
       "allow-float"},
      {"method-shape-check",
       "every KvAttention prefill/decode/attend must TURBO_CHECK its input "
       "shapes",
       ""},
      {"unchecked-cache-append",
       "PagedKvCache::append_token's result reports page exhaustion and "
       "must be consumed",
       "allow-unchecked-append"},
      {"unmirrored-engine-counter",
       "every EngineResult counter must be mirrored into ServingMetrics "
       "and assigned in metrics.cpp",
       "allow-unmirrored"},
      {"unfaultable-swap-io",
       "every swap store/fetch entry point must accept a FaultInjector*",
       "allow-unfaultable"},
      {"nondeterministic-iteration",
       "iteration over std::unordered_{map,set} must not feed "
       "ordering-sensitive sinks; use an ordered container or a sorted "
       "snapshot",
       "allow-unordered-iter"},
      {"unsanctioned-entropy",
       "rand/random_device/clock reads outside src/common/rng.h break "
       "seeded bit-identical runs",
       "allow-entropy"},
      {"mutable-global-state",
       "no mutable namespace-scope or function-static state in "
       "src/kernels, src/quant, src/attention (the worker-pool execution "
       "surface)",
       "allow-mutable-global"},
      {"unordered-float-reduction",
       "float accumulation over unordered iteration is hash-layout-"
       "dependent; sort first or accumulate in integer domain",
       "allow-unordered-reduction"},
      {"unfaultable-replica-channel",
       "every src/fleet migration/transfer entry point must accept a "
       "FaultInjector*",
       "allow-unfaultable-channel"},
      {"cow-unguarded-page-write",
       "page_data_[...] writes outside the fresh-page allocation sites "
       "must prove private ownership with a refcount_[...] == guard "
       "(shared pages are copy-on-write)",
       "allow-cow-write"},
      {"unfaultable-snapshot-io",
       "every src/serving/snapshot save/restore entry point must accept "
       "a FaultInjector*",
       "allow-unfaultable-snapshot"},
  };
  return kRules;
}

std::vector<Finding> run_rules(const Project& project) {
  std::vector<Finding> out;
  for (const SourceFile& f : project.files()) {
    rule_no_raw_assert(f, out);
    rule_unchecked_i8_cast(f, out);
    rule_integer_kernel(f, out);
    rule_unchecked_cache_append(f, out);
    rule_unfaultable_swap_io(f, out);
    rule_unfaultable_replica_channel(f, out);
    rule_unfaultable_snapshot_io(f, out);
    rule_cow_unguarded_page_write(f, out);
    rule_nondeterministic_iteration(project, f, out);
    rule_unsanctioned_entropy(f, out);
    rule_mutable_global_state(f, out);
    rule_unordered_float_reduction(project, f, out);
  }
  rule_method_shape_check(project, out);
  rule_unmirrored_engine_counters(project, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.rel != b.rel) return a.rel < b.rel;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

}  // namespace turbo::lint
