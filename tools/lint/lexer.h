// Token-stream lexer for turbo_lint (see docs/STATIC_ANALYSIS.md).
//
// The v1 linter matched regexes over comment-stripped text; that breaks
// down as soon as a rule needs to know *where* it is (namespace scope vs
// function body), needs maximal-munch operators (`>>` closing two
// template lists), or wants to reason about statements. This lexer
// produces a proper token stream — identifiers, literals, punctuation,
// preprocessor directives — each token carrying its line, column and
// brace depth, so rules pattern-match tokens instead of text. String
// and character literals become single tokens, which is what makes the
// engine immune to rule keywords appearing inside log messages.
//
// Suppression markers (`// turbo-lint: <marker>`) and file-level tags
// (markers in the first ten lines) are extracted from comments during
// lexing and exposed per line, so rules never re-scan raw text.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace turbo::lint {

enum class TokKind {
  kIdent,      // identifiers and keywords
  kNumber,     // integer or floating literal (see Token::is_float)
  kString,     // string literal, contents dropped
  kChar,       // character literal, contents dropped
  kPunct,      // operator / punctuation, maximal munch
  kDirective,  // whole preprocessor logical line (continuations joined)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;       // spelling; for kDirective the whole line
  std::size_t line = 1;   // 1-based source line
  std::size_t col = 1;    // 1-based source column
  std::size_t depth = 0;  // brace depth at the token ('{' and its '}' match)
  bool is_float = false;  // kNumber only: has '.', exponent, or f/F suffix
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<std::string> lines;  // raw source, index 0 == line 1
  // line -> suppression markers ("turbo-lint: <marker>") on that line.
  std::map<std::size_t, std::set<std::string>> markers;
  // Markers appearing in the first ten lines act as file-level tags
  // (e.g. `integer-kernel`).
  std::set<std::string> tags;
};

LexedFile lex(const std::string& text);

// True when `line` (1-based) carries the given suppression marker.
bool line_has_marker(const LexedFile& file, std::size_t line,
                     const std::string& marker);

}  // namespace turbo::lint
