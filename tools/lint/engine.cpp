#include "tools/lint/engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

namespace turbo::lint {

namespace {

// FNV-1a 64-bit, rendered as 16 hex digits. Stable across platforms and
// stdlib versions — deliberately not std::hash, whose layout is exactly
// the kind of nondeterminism this tool exists to keep out of the tree.
std::string fnv1a_hex(const std::string& data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : data) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = kHex[h & 0xFULL];
    h >>= 4;
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Skip a balanced template-argument list: `i` points at '<'; returns the
// index just past the matching '>'. Treats '>>' as two closers.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (toks[i].kind == TokKind::kPunct) {
      if (t == "<") ++depth;
      if (t == ">") --depth;
      if (t == ">>") depth -= 2;
      if (t == "<<") depth += 2;  // defensive; not expected in type args
    }
    ++i;
    if (depth <= 0) break;
  }
  return i;
}

}  // namespace

SourceFile make_source(std::string rel, const std::string& text) {
  SourceFile f;
  f.rel = std::move(rel);
  f.raw = text;
  f.lexed = lex(text);
  return f;
}

Project::Project(std::vector<SourceFile> files) : files_(std::move(files)) {
  for (const SourceFile& f : files_) {
    const std::vector<Token>& toks = f.lexed.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const std::string& t = toks[i].text;

      // `std::unordered_map<K, V> name` / `std::unordered_set<T> name`
      if (t == "unordered_map" || t == "unordered_set" ||
          t == "unordered_multimap" || t == "unordered_multiset") {
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].kind == TokKind::kPunct &&
            toks[j].text == "<") {
          j = skip_angles(toks, j);
        }
        // Skip reference/pointer declarators.
        while (j < toks.size() && toks[j].kind == TokKind::kPunct &&
               (toks[j].text == "&" || toks[j].text == "*")) {
          ++j;
        }
        if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
            !(j + 1 < toks.size() && toks[j + 1].text == "::")) {
          unordered_names_.insert(toks[j].text);
        }
      }

      // `float name` / `double name` (not function declarations)
      if (t == "float" || t == "double") {
        std::size_t j = i + 1;
        while (j < toks.size() && toks[j].kind == TokKind::kPunct &&
               (toks[j].text == "&" || toks[j].text == "*")) {
          ++j;
        }
        if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
          const bool is_function =
              j + 1 < toks.size() && toks[j + 1].kind == TokKind::kPunct &&
              toks[j + 1].text == "(";
          if (!is_function) float_names_.insert(toks[j].text);
        }
      }
    }
  }
}

const SourceFile* Project::find(const std::string& rel) const {
  for (const SourceFile& f : files_) {
    if (f.rel == rel) return &f;
  }
  return nullptr;
}

const RuleInfo* rule_info(const std::string& id) {
  for (const RuleInfo& r : rules()) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

// --- baseline -------------------------------------------------------------

std::string finding_key(const Finding& finding, const Project& project) {
  std::string line_text;
  const SourceFile* file = project.find(finding.rel);
  if (file != nullptr && finding.line >= 1 &&
      finding.line <= file->lexed.lines.size()) {
    line_text = trim(file->lexed.lines[finding.line - 1]);
  }
  return fnv1a_hex(finding.rule + "\x1f" + finding.rel + "\x1f" + line_text);
}

std::map<std::string, std::size_t> parse_baseline(const std::string& text) {
  std::map<std::string, std::size_t> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash_pos = line.find('#');
    if (hash_pos != std::string::npos) line = line.substr(0, hash_pos);
    std::istringstream fields(line);
    std::string rule;
    std::string rel;
    std::string key;
    if (fields >> rule >> rel >> key) ++out[key];
  }
  return out;
}

std::string format_baseline(const std::vector<Finding>& findings,
                            const Project& project) {
  std::ostringstream out;
  out << "# turbo_lint baseline — grandfathered findings.\n"
      << "# One entry per accepted finding: <rule> <file> <key>, where\n"
      << "# <key> hashes the rule, the path and the offending line's text\n"
      << "# (line numbers don't matter, so unrelated edits keep entries\n"
      << "# valid). Entries that stop matching are reported as stale and\n"
      << "# must be removed: this file only ever shrinks.\n";
  std::vector<std::string> entries;
  entries.reserve(findings.size());
  for (const Finding& f : findings) {
    entries.push_back(f.rule + " " + f.rel + " " + finding_key(f, project));
  }
  std::sort(entries.begin(), entries.end());
  for (const std::string& e : entries) out << e << "\n";
  return out.str();
}

std::vector<Finding> apply_baseline(
    const std::vector<Finding>& findings, const Project& project,
    std::map<std::string, std::size_t> baseline,
    std::vector<std::string>* stale) {
  std::vector<Finding> live;
  for (const Finding& f : findings) {
    auto it = baseline.find(finding_key(f, project));
    if (it != baseline.end() && it->second > 0) {
      --it->second;
    } else {
      live.push_back(f);
    }
  }
  if (stale != nullptr) {
    for (const auto& [key, count] : baseline) {
      for (std::size_t k = 0; k < count; ++k) stale->push_back(key);
    }
  }
  return live;
}

// --- reporting ------------------------------------------------------------

std::string to_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.rel << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

std::string to_json(const std::vector<Finding>& findings,
                    std::size_t files_scanned) {
  std::ostringstream out;
  out << "{\n"
      << "  \"tool\": \"turbo_lint\",\n"
      << "  \"version\": 2,\n"
      << "  \"files_scanned\": " << files_scanned << ",\n"
      << "  \"count\": " << findings.size() << ",\n"
      << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const RuleInfo* info = rule_info(f.rule);
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(f.rel) << "\", "
        << "\"line\": " << f.line << ", "
        << "\"rule\": \"" << json_escape(f.rule) << "\", "
        << "\"message\": \"" << json_escape(f.message) << "\", "
        << "\"suppression\": \""
        << json_escape(info != nullptr ? info->suppression : "") << "\"}";
  }
  out << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

// --- loading --------------------------------------------------------------

std::vector<SourceFile> load_tree(const std::string& root) {
  std::vector<fs::path> paths;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(
        make_source(fs::relative(p, root).generic_string(), buf.str()));
  }
  return files;
}

}  // namespace turbo::lint
