// turbo_lint v2 analysis engine: file loading, rule registry, suppression
// and baseline handling, text/JSON reporting.
//
// The engine is a library (linked by the `turbo_lint` CLI and by
// tests/lint_engine_test.cpp) so the rules can be driven against fixture
// trees without shelling out to the binary. A `Project` owns every lexed
// source file plus the cross-file symbol tables rules need:
//
//  - `unordered_names()`: every identifier declared anywhere in the tree
//    as a `std::unordered_map` / `std::unordered_set` — the iteration-
//    order-sensitive containers rules 8 and 11 reason about.
//  - `float_names()`: identifiers declared with `float` / `double`
//    anywhere (members and locals), the accumulators rule 11 watches.
//
// Findings are deterministic: rules run in registry order and results
// are sorted by (file, line, rule, message) before reporting, so two
// runs over the same tree emit byte-identical output — the same
// property the linter enforces on the code it scans.
//
// Baseline workflow (grandfathering): a baseline file holds one line per
// accepted finding, `<rule> <file> <hash>`, where the hash covers the
// rule id, the file path and the *text* of the offending line (not its
// number, so unrelated edits don't invalidate entries). Findings whose
// key appears in the baseline are filtered out; baseline entries that no
// longer match anything are reported as stale so the file can only
// shrink. `turbo_lint --write-baseline` regenerates it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace turbo::lint {

struct SourceFile {
  std::string rel;  // path relative to the scanned root, '/'-separated
  std::string raw;  // original contents
  LexedFile lexed;
};

SourceFile make_source(std::string rel, const std::string& text);

struct Finding {
  std::string rel;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string id;           // e.g. "nondeterministic-iteration"
  std::string summary;      // one-line rationale for --list-rules
  std::string suppression;  // inline marker name ("" = not suppressible)
};

class Project {
 public:
  explicit Project(std::vector<SourceFile> files);

  const std::vector<SourceFile>& files() const { return files_; }
  const SourceFile* find(const std::string& rel) const;

  // Identifiers declared as std::unordered_map / std::unordered_set
  // anywhere in the project (members, locals, parameters).
  const std::set<std::string>& unordered_names() const {
    return unordered_names_;
  }
  // Identifiers declared with float / double anywhere in the project.
  const std::set<std::string>& float_names() const { return float_names_; }

 private:
  std::vector<SourceFile> files_;
  std::set<std::string> unordered_names_;
  std::set<std::string> float_names_;
};

// Registry of all rules, in rule-number order (1..11).
const std::vector<RuleInfo>& rules();
const RuleInfo* rule_info(const std::string& id);

// Run every rule; inline suppressions already applied; results sorted.
std::vector<Finding> run_rules(const Project& project);

// --- baseline -------------------------------------------------------------

// Stable key for a finding: fnv1a64 over rule id, file path and the
// trimmed text of the offending line.
std::string finding_key(const Finding& finding, const Project& project);

// Parse a baseline file: one `<rule> <file> <hash>` entry per line,
// '#' comments and blank lines ignored. Returns multiset of keys.
std::map<std::string, std::size_t> parse_baseline(const std::string& text);

// Render findings as baseline entries (sorted, commented header).
std::string format_baseline(const std::vector<Finding>& findings,
                            const Project& project);

// Remove findings whose key is in `baseline` (consuming one count per
// match). Keys left unconsumed are returned through `stale` — entries
// whose violation no longer exists and must be deleted from the file.
std::vector<Finding> apply_baseline(
    const std::vector<Finding>& findings, const Project& project,
    std::map<std::string, std::size_t> baseline,
    std::vector<std::string>* stale);

// --- reporting ------------------------------------------------------------

std::string to_text(const std::vector<Finding>& findings);
// Machine-readable report: {"tool","version","files_scanned","count",
// "findings":[{"file","line","rule","message","suppression"}]}.
std::string to_json(const std::vector<Finding>& findings,
                    std::size_t files_scanned);

// --- loading --------------------------------------------------------------

// Load every .h/.cpp under <root>/src and <root>/tools. Deterministic
// (sorted) order regardless of directory enumeration.
std::vector<SourceFile> load_tree(const std::string& root);

}  // namespace turbo::lint
