#include "tools/lint/lexer.h"

#include <cctype>

namespace turbo::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Multi-character operators, longest first so maximal munch falls out of
// the scan order.
const char* const kMultiPunct[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",
};

// Pull every "turbo-lint: <marker>" out of a comment's text.
void collect_markers(const std::string& comment, std::size_t line,
                     LexedFile& out) {
  const std::string needle = "turbo-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    while (pos < comment.size() && comment[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < comment.size() &&
           (is_ident_char(comment[end]) || comment[end] == '-')) {
      ++end;
    }
    if (end > pos) out.markers[line].insert(comment.substr(pos, end - pos));
    pos = end;
  }
}

}  // namespace

bool line_has_marker(const LexedFile& file, std::size_t line,
                     const std::string& marker) {
  auto it = file.markers.find(line);
  return it != file.markers.end() && it->second.count(marker) > 0;
}

LexedFile lex(const std::string& text) {
  LexedFile out;

  // Raw line table (index 0 == line 1).
  {
    std::string current;
    for (const char c : text) {
      if (c == '\n') {
        out.lines.push_back(current);
        current.clear();
      } else {
        current += c;
      }
    }
    if (!current.empty()) out.lines.push_back(current);
  }

  std::size_t i = 0;
  std::size_t line = 1;
  std::size_t col = 1;
  std::size_t depth = 0;
  const std::size_t n = text.size();

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  auto push = [&](TokKind kind, std::string spelling, std::size_t tok_line,
                  std::size_t tok_col, bool is_float = false) {
    Token t;
    t.kind = kind;
    t.text = std::move(spelling);
    t.line = tok_line;
    t.col = tok_col;
    t.depth = depth;
    t.is_float = is_float;
    out.tokens.push_back(std::move(t));
  };

  bool at_line_start = true;  // only whitespace seen since the last newline

  while (i < n) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';

    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
        c == '\f') {
      if (c == '\n') at_line_start = true;
      advance(1);
      continue;
    }

    // Preprocessor directive: '#' first on the line; join continuations.
    if (c == '#' && at_line_start) {
      const std::size_t d_line = line;
      const std::size_t d_col = col;
      std::string directive;
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          directive += ' ';
          advance(2);
          continue;
        }
        if (text[i] == '\n') break;
        directive += text[i];
        advance(1);
      }
      push(TokKind::kDirective, directive, d_line, d_col);
      continue;
    }
    at_line_start = false;

    // Comments: dropped from the stream, mined for markers.
    if (c == '/' && next == '/') {
      std::string comment;
      const std::size_t c_line = line;
      while (i < n && text[i] != '\n') {
        comment += text[i];
        advance(1);
      }
      collect_markers(comment, c_line, out);
      continue;
    }
    if (c == '/' && next == '*') {
      std::string comment;
      std::size_t c_line = line;
      advance(2);
      while (i < n) {
        if (text[i] == '*' && i + 1 < n && text[i + 1] == '/') {
          advance(2);
          break;
        }
        if (text[i] == '\n') {
          collect_markers(comment, c_line, out);
          comment.clear();
          c_line = line + 1;
        } else {
          comment += text[i];
        }
        advance(1);
      }
      collect_markers(comment, c_line, out);
      continue;
    }

    // String / character literals become single opaque tokens.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t s_line = line;
      const std::size_t s_col = col;
      advance(1);
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          advance(2);
        } else {
          advance(1);
        }
      }
      advance(1);  // closing quote
      push(quote == '"' ? TokKind::kString : TokKind::kChar,
           std::string(1, quote), s_line, s_col);
      continue;
    }

    // Identifiers / keywords.
    if (is_ident_start(c)) {
      const std::size_t s_line = line;
      const std::size_t s_col = col;
      std::string ident;
      while (i < n && is_ident_char(text[i])) {
        ident += text[i];
        advance(1);
      }
      push(TokKind::kIdent, std::move(ident), s_line, s_col);
      continue;
    }

    // Numeric literals (covers 0x1F, 1'000, 1.5e-3f, .5f after a digit
    // start; a leading '.' is handled as punctuation, matching how rules
    // consume it).
    if (is_digit(c)) {
      const std::size_t s_line = line;
      const std::size_t s_col = col;
      std::string num;
      bool is_float = false;
      while (i < n) {
        const char d = text[i];
        if (is_digit(d) || is_ident_char(d) || d == '\'' || d == '.') {
          if (d == '.') is_float = true;
          if ((d == 'e' || d == 'E') && num.size() > 0 &&
              num.find('x') == std::string::npos &&
              num.find('X') == std::string::npos) {
            is_float = true;
            num += d;
            advance(1);
            if (i < n && (text[i] == '+' || text[i] == '-')) {
              num += text[i];
              advance(1);
            }
            continue;
          }
          if ((d == 'f' || d == 'F') && num.find('x') == std::string::npos &&
              num.find('X') == std::string::npos) {
            is_float = true;
          }
          num += d;
          advance(1);
        } else {
          break;
        }
      }
      push(TokKind::kNumber, std::move(num), s_line, s_col, is_float);
      continue;
    }

    // Braces drive the depth counter; '{' and its '}' share a depth.
    if (c == '{') {
      push(TokKind::kPunct, "{", line, col);
      ++depth;
      advance(1);
      continue;
    }
    if (c == '}') {
      if (depth > 0) --depth;
      push(TokKind::kPunct, "}", line, col);
      // Fix the recorded depth so the brace matches its opener.
      out.tokens.back().depth = depth;
      advance(1);
      continue;
    }

    // Multi-character punctuation, longest match first.
    bool matched = false;
    for (const char* op : kMultiPunct) {
      const std::size_t len = std::string(op).size();
      if (text.compare(i, len, op) == 0) {
        push(TokKind::kPunct, op, line, col);
        advance(len);
        matched = true;
        break;
      }
    }
    if (matched) continue;

    push(TokKind::kPunct, std::string(1, c), line, col);
    advance(1);
  }

  // File-level tags: markers in the first ten lines.
  for (const auto& [marker_line, names] : out.markers) {
    if (marker_line > 10) break;
    out.tags.insert(names.begin(), names.end());
  }
  return out;
}

}  // namespace turbo::lint
